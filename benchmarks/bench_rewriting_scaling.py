"""Rewriting scaling: UCQ size and time vs ontology depth/width.

A figure-like performance series for the rewriting engine itself, on
the two canonical DL-style families:

* a concept *hierarchy* of depth d -- the rewriting of a query on the
  top concept has exactly d+1 disjuncts (linear growth);
* a *role chain* of depth d -- existential propagation, the rewriting
  of a boolean query on the last relation also grows linearly.

The shape to observe: disjunct counts grow linearly (no blow-up on
these SWR families) and time stays polynomial.

The third bench gates the subsumption/minimization kernel: on a
minimization-heavy corpus (rewriting outputs of both families padded
with random specializations of their own disjuncts), the optimized
minimizer must return *exactly* the naive result at >= 2x the speed,
with the filter counters proving the fast paths actually engaged.
"""

import random
import time

from _harness import capture_stage_metrics, write_artifact, write_json_artifact

from repro.lang.atoms import Atom
from repro.lang.queries import ConjunctiveQuery
from repro.lang.substitution import Substitution
from repro.lang.terms import Constant, Variable
from repro.rewriting.minimize import remove_subsumed
from repro.rewriting.rewriter import rewrite
from repro.rewriting.subsume import (
    kernel_remove_subsumed,
    naive_remove_subsumed,
)
from repro.workloads.generators import concept_hierarchy, role_chain

DEPTHS = (4, 8, 16, 32)


def hierarchy_series():
    rows = []
    for depth in DEPTHS:
        rules = concept_hierarchy(depth)
        query = ConjunctiveQuery(
            [Variable("X")], [Atom(f"c{depth}", [Variable("X")])]
        )
        start = time.perf_counter()
        result = rewrite(query, rules)
        elapsed = time.perf_counter() - start
        assert result.complete
        assert result.size == depth + 1
        rows.append((depth, result.size, elapsed))
    return rows


def chain_series():
    rows = []
    for depth in DEPTHS:
        rules = role_chain(depth)
        query = ConjunctiveQuery(
            [], [Atom(f"r{depth}", [Variable("X"), Variable("Y")])]
        )
        start = time.perf_counter()
        result = rewrite(query, rules)
        elapsed = time.perf_counter() - start
        assert result.complete
        assert result.size == depth + 1
        rows.append((depth, result.size, elapsed))
    return rows


def test_rewriting_scaling_hierarchy(benchmark):
    rules = concept_hierarchy(max(DEPTHS))
    query = ConjunctiveQuery(
        [Variable("X")], [Atom(f"c{max(DEPTHS)}", [Variable("X")])]
    )
    benchmark(lambda: rewrite(query, rules))

    rows = hierarchy_series()
    lines = [
        "Rewriting scaling -- concept hierarchy c0 ⊑ ... ⊑ c_d",
        "",
        "depth  disjuncts  seconds",
    ]
    lines.extend(
        f"{depth:>5}  {size:>9}  {elapsed:.4f}" for depth, size, elapsed in rows
    )
    lines += ["", "disjuncts = depth + 1 exactly: linear, no blow-up."]
    write_artifact("rewriting_scaling_hierarchy.txt", "\n".join(lines))


def test_rewriting_scaling_chain(benchmark):
    rules = role_chain(max(DEPTHS))
    query = ConjunctiveQuery(
        [], [Atom(f"r{max(DEPTHS)}", [Variable("X"), Variable("Y")])]
    )
    benchmark(lambda: rewrite(query, rules))

    rows = chain_series()
    lines = [
        "Rewriting scaling -- existential role chain r_i(x,y) -> "
        "r_{i+1}(x,z)",
        "",
        "depth  disjuncts  seconds",
    ]
    lines.extend(
        f"{depth:>5}  {size:>9}  {elapsed:.4f}" for depth, size, elapsed in rows
    )
    lines += [
        "",
        "boolean queries traverse the whole chain (the invented value",
        "needs no witness); linear growth again.",
    ]
    write_artifact("rewriting_scaling_chain.txt", "\n".join(lines))


# --------------------------------------------------------------------- #
# Minimization kernel speedup (counter-gated)                             #
# --------------------------------------------------------------------- #

SPEEDUP_FLOOR = 2.0  # the ISSUE's acceptance bar; measured ~10x


def minimization_corpus() -> list[ConjunctiveQuery]:
    """A deterministic, subsumption-dense CQ pool.

    Real rewriting outputs of both scaling families, padded with random
    specializations of their own disjuncts (substituted variables plus
    borrowed atoms) -- the population the rewriter's minimization pass
    actually sees, at a size where the quadratic naive loop hurts.
    """
    rng = random.Random(2024)
    seeds: list[ConjunctiveQuery] = []
    for depth in (8, 16):
        hierarchy_query = ConjunctiveQuery(
            [Variable("X")], [Atom(f"c{depth}", [Variable("X")])]
        )
        seeds.extend(rewrite(hierarchy_query, concept_hierarchy(depth)).ucq)
        chain_query = ConjunctiveQuery(
            [], [Atom(f"r{depth}", [Variable("X"), Variable("Y")])]
        )
        seeds.extend(rewrite(chain_query, role_chain(depth)).ucq)
    constants = [Constant("c1"), Constant("c2")]
    spare_vars = [Variable("V0"), Variable("V1")]
    corpus: list[ConjunctiveQuery] = []
    for cq in seeds:
        corpus.append(cq)
        for _ in range(4):
            answer_vars = set(cq.answer_variables)
            mapping = {
                v: rng.choice(spare_vars + constants)
                for v in cq.body_variables()
                if v not in answer_vars and rng.random() < 0.5
            }
            specialized = cq.apply(Substitution(mapping))
            borrowed = list(rng.choice(seeds).body)[:1]
            corpus.append(
                ConjunctiveQuery(
                    specialized.answer_terms,
                    list(specialized.body) + borrowed,
                )
            )
    rng.shuffle(corpus)
    return corpus


def _best_of(runs: int, workload) -> tuple[float, object]:
    times, result = [], None
    for _ in range(runs):
        start = time.perf_counter()
        result = workload()
        times.append(time.perf_counter() - start)
    return min(times), result


def test_minimization_kernel_speedup(benchmark):
    corpus = minimization_corpus()
    benchmark.pedantic(
        lambda: kernel_remove_subsumed(corpus), rounds=3, iterations=1
    )

    naive_time, naive_result = _best_of(
        3, lambda: naive_remove_subsumed(corpus)
    )
    fast_time, fast_result = _best_of(
        3, lambda: kernel_remove_subsumed(corpus)
    )
    assert fast_result == naive_result  # drop-in: same tuple, same order
    speedup = naive_time / fast_time

    # Counter gate: the public entry point must show the fast paths
    # engaged -- pairs skipped by filters/buckets, a cached freeze per
    # profiled CQ, and strictly fewer homomorphism searches than pairs.
    (survivors, metrics) = capture_stage_metrics(
        lambda: remove_subsumed(corpus)
    )
    counters = metrics["counters"]
    assert survivors == naive_result
    assert counters["minimize.pairs_skipped"] > 0
    assert counters["minimize.hom_checks"] < counters["minimize.subsumption_checks"]
    assert counters["minimize.freeze_cache_misses"] <= len(corpus)
    assert speedup >= SPEEDUP_FLOOR, (
        f"minimization kernel only {speedup:.1f}x faster than naive "
        f"(floor {SPEEDUP_FLOOR}x): naive {naive_time:.4f}s vs "
        f"optimized {fast_time:.4f}s"
    )

    skip_rate = (
        counters["minimize.pairs_skipped"]
        / counters["minimize.subsumption_checks"]
    )
    lines = [
        "Minimization kernel -- optimized vs naive on the scaling corpus",
        "",
        f"corpus:     {len(corpus)} CQs, {len(naive_result)} survivors",
        f"naive:      {naive_time:.4f} s (freeze + hom search per pair)",
        f"optimized:  {fast_time:.4f} s (filters + freeze cache + buckets)",
        f"speedup:    {speedup:.1f}x (gate: >= {SPEEDUP_FLOOR}x)",
        "",
        f"pairs considered:   {counters['minimize.subsumption_checks']}",
        f"pairs skipped:      {counters['minimize.pairs_skipped']}"
        f" ({skip_rate:.0%} rejected without homomorphism search)",
        f"hom searches:       {counters['minimize.hom_checks']}",
        f"freeze cache:       {counters.get('minimize.freeze_cache_hits', 0)}"
        f" hits / {counters['minimize.freeze_cache_misses']} misses",
    ]
    write_artifact("rewriting_scaling_minimize.txt", "\n".join(lines))
    write_json_artifact(
        "rewriting_scaling_minimize.json",
        {
            "schema": 1,
            "corpus_size": len(corpus),
            "survivors": len(naive_result),
            "naive_ms": round(naive_time * 1000, 3),
            "optimized_ms": round(fast_time * 1000, 3),
            "speedup": round(speedup, 2),
            "counters": counters,
        },
    )

