"""E10b -- Datalog materialisation vs FO rewriting on the full fragment.

The paper's introduction positions TGDs against classical Datalog
(bottom-up materialisation, no value invention).  On the
existential-free fragment of the university ontology both strategies
are available; this bench answers the same query by semi-naive
materialisation and by rewriting across growing databases.  The shape
to observe: materialisation cost is paid per database and grows with
it, rewriting-evaluation stays flat -- and where the query is asked
only once, materialisation's extra derived facts are pure overhead.
"""

import time

from _harness import write_artifact

from repro.data.datalog import DatalogProgram, datalog_fragment
from repro.data.evaluation import evaluate_ucq
from repro.lang.parser import parse_query
from repro.rewriting.rewriter import rewrite
from repro.workloads.ontologies import university_data, university_ontology

SIZES = (20, 40, 80)
QUERY = parse_query("q(X) :- employee(X)")


def series():
    rules = datalog_fragment(university_ontology())
    program = DatalogProgram(rules)
    rewriting = rewrite(QUERY, rules)
    assert rewriting.complete
    rows = []
    for size in SIZES:
        database = university_data(size, seed=size)
        start = time.perf_counter()
        materialised = program.materialize(database)
        mat_answers = evaluate_ucq(QUERY, materialised.instance)
        mat_time = time.perf_counter() - start
        start = time.perf_counter()
        rew_answers = evaluate_ucq(rewriting.ucq, database)
        rew_time = time.perf_counter() - start
        assert mat_answers == rew_answers
        rows.append(
            (
                size,
                len(database),
                materialised.derived,
                len(rew_answers),
                mat_time,
                rew_time,
            )
        )
    return rows


def test_materialization_vs_rewriting(benchmark):
    rows = benchmark.pedantic(series, rounds=1, iterations=1)
    assert all(mat > rew for *_, mat, rew in rows)

    lines = [
        "E10b -- semi-naive Datalog materialisation vs FO rewriting",
        "(existential-free fragment of the university ontology)",
        "",
        "size  facts  derived  answers  materialise(s)  rewrite-eval(s)",
    ]
    for size, facts, derived, answers, mat, rew in rows:
        lines.append(
            f"{size:>4}  {facts:>5}  {derived:>7}  {answers:>7}  "
            f"{mat:>14.4f}  {rew:>15.4f}"
        )
    lines += [
        "",
        "identical answers on every size; the materialisation cost",
        "(deriving the closure) is paid per database, the rewriting is",
        "data-independent.",
    ]
    write_artifact("materialization_vs_rewriting.txt", "\n".join(lines))
