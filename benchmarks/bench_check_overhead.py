"""Whole-project check overhead, and the pruning payoff, gated.

``repro check`` is meant to run before every deployment and the engine
pre-flight estimate before every cold compilation; both are only
acceptable if they are nearly free next to the work they guard
(classify + rewrite over the workload).  This bench measures both
against that baseline on the seeded example project and asserts each
costs <10% of it.

The second test gates the safe-pruning path on its observability
counters: a pruning session must actually drop the statically-empty
disjuncts (``session.pruned_disjuncts``), evaluate strictly fewer of
them, and return exactly the unpruned answers.
"""

import time
from pathlib import Path

from _harness import write_artifact

from repro import obs
from repro.api import Session
from repro.checkers import CheckConfig, check_project, load_project
from repro.checkers.estimator import estimate_disjunct_bound
from repro.core.classify import classify
from repro.data.database import Database
from repro.lang.parser import parse_database, parse_program, parse_query
from repro.lang.queries import UnionOfConjunctiveQueries
from repro.obda.mappings import parse_mappings
from repro.rewriting import RewritingBudget, rewrite

PROJECT_DIR = (
    Path(__file__).resolve().parents[1] / "examples" / "check_project"
)


def _best_seconds(fn, repeat=5):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_check_overhead(benchmark):
    project = load_project(PROJECT_DIR)
    budget = RewritingBudget(max_depth=50, max_cqs=100_000)
    config = CheckConfig(budget=budget)
    benchmark(lambda: check_project(project, config))

    def baseline():
        classify(project.rules)
        for query in project.queries:
            rewrite(query, project.rules, budget)

    def estimates():
        for query in project.queries:
            estimate_disjunct_bound(
                UnionOfConjunctiveQueries.of(query),
                project.rules,
                budget=budget,
            )

    check_s = _best_seconds(lambda: check_project(project, config))
    estimate_s = _best_seconds(estimates)
    baseline_s = _best_seconds(baseline)
    check_overhead = check_s / baseline_s
    estimate_overhead = estimate_s / baseline_s

    lines = [
        "Whole-project check overhead on examples/check_project "
        f"({len(project.rules)} rules, {len(project.queries)} queries)",
        "",
        "stage                    seconds   vs classify+rewrite",
        f"full repro check         {check_s:.4f}    {check_overhead:6.1%}",
        f"pre-flight estimate      {estimate_s:.4f}    {estimate_overhead:6.1%}",
        f"classify + rewrite       {baseline_s:.4f}    100.0%",
        "",
        f"A full cross-artifact check costs {check_overhead:.1%} and the "
        f"engine pre-flight {estimate_overhead:.1%} of the work they guard.",
    ]
    write_artifact("check_overhead.txt", "\n".join(lines))

    assert check_overhead < 0.10, (
        f"repro check costs {check_overhead:.1%} of classify+rewrite "
        "(budget: <10%)"
    )
    assert estimate_overhead < 0.10, (
        f"pre-flight estimate costs {estimate_overhead:.1%} of "
        "classify+rewrite (budget: <10%)"
    )


GHOSTS = 8
PRUNE_ONTOLOGY = parse_program(
    "r_prof: professor(X) -> person(X).\n"
    "r_stud: student(X) -> person(X).\n"
    + "".join(f"g{i}: ghost{i}(X) -> person(X).\n" for i in range(GHOSTS))
)
PRUNE_MAPPINGS = parse_mappings(
    "prof_row(X, D) ~> professor(X).\nstud_row(X) ~> student(X).\n"
)
PRUNE_DATA = Database(
    parse_database(
        "".join(f"prof_row(p{i}, cs).\n" for i in range(64))
        + "".join(f"stud_row(s{i}).\n" for i in range(64))
    )
)
PRUNE_QUERY = parse_query("q(X) :- person(X)")


def test_pruning_counter_gated(benchmark):
    with Session(
        PRUNE_ONTOLOGY, PRUNE_DATA, mappings=PRUNE_MAPPINGS
    ) as plain, Session(
        PRUNE_ONTOLOGY, PRUNE_DATA, mappings=PRUNE_MAPPINGS, prune_empty=True
    ) as pruning:
        expected = plain.prepare(PRUNE_QUERY).answer()
        assert expected  # non-vacuous

        # The ghost disjuncts prune, and so does the original person(X)
        # disjunct itself: no mapping targets person, so the virtual
        # ABox can never hold a person fact directly.
        dropped = GHOSTS + 1
        with obs.capture() as captured:
            prepared = pruning.prepare(PRUNE_QUERY)
            answers = prepared.answer()
        assert answers == expected
        assert captured.counter("session.pruned_disjuncts") == dropped

        pruned = prepared.pruned
        assert pruned is not None
        assert pruned.dropped == dropped
        assert pruned.kept == prepared.result.size - dropped
        assert prepared.answer(backend="sql") == expected

        benchmark(prepared.answer)
        pruned_s = _best_seconds(prepared.answer)
        plain_s = _best_seconds(plain.prepare(PRUNE_QUERY).answer)

        lines = [
            "Safe disjunct pruning on a warm session "
            f"({GHOSTS} statically-empty derivers of the query relation)",
            "",
            "path             disjuncts   seconds/answer",
            f"unpruned         {prepared.result.size:>9}   {plain_s:.5f}",
            f"pruned           {pruned.kept:>9}   {pruned_s:.5f}",
            "",
            f"Counter session.pruned_disjuncts = {dropped}; pruned answers "
            "identical to unpruned on the memory and SQL paths.",
        ]
        write_artifact("check_pruning.txt", "\n".join(lines))
