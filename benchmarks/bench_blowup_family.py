"""Blowup family: exponential UCQ vs polynomial Datalog target.

The family that motivates the nonrecursive-Datalog rewriting target:
``n`` joined atoms, each derivable through ``k`` alternative rules.
The exploded UCQ rewriting enumerates every combination of
alternatives -- ``(k+1)^n`` disjuncts -- while the Datalog target
emits one intermediate predicate per atom pattern, ``n*(k+1) + 1``
rules in total.  The artifact reports both sizes per family member,
the reduction factor at the largest size (gated at >= 10x), the
estimator-driven ``auto`` choice per member, and a differential check
that both targets (memory and SQL-CTE evaluation) agree with the
chase oracle on a concrete database.
"""

import time

from _harness import capture_stage_metrics, write_artifact, write_json_artifact

from repro.chase.certain import certain_answers
from repro.data.database import Database
from repro.lang.atoms import Atom
from repro.lang.parser import parse_query
from repro.lang.terms import Constant, Variable
from repro.lang.tgd import TGD
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.datalog_target import rewrite_datalog
from repro.rewriting.engine import FORewritingEngine
from repro.rewriting.rewriter import rewrite

DERIVERS = 3  # alternative rules per joined relation
SIZES = (1, 2, 3, 4, 5)  # joined atoms; largest gives 4^5 = 1024 disjuncts
MIN_REDUCTION = 10.0


def blowup_family(atoms: int, derivers: int = DERIVERS):
    """(rules, query): ``q(X) :- c1(X), ..., cn(X)`` with *derivers*
    alternative derivations ``a{i}_{j}(X) -> c{i}(X)`` per atom."""
    x = Variable("X")
    rules = tuple(
        TGD([Atom(f"a{i}_{j}", (x,))], [Atom(f"c{i}", (x,))])
        for i in range(1, atoms + 1)
        for j in range(1, derivers + 1)
    )
    body = ", ".join(f"c{i}(X)" for i in range(1, atoms + 1))
    return rules, parse_query(f"q(X) :- {body}")


def family_database(atoms: int, derivers: int = DERIVERS) -> Database:
    """A database where some answers need derivations, some are direct."""
    facts = []
    # "u" satisfies every atom through its first deriver; "v" through
    # the stored relation directly; "w" misses the last atom.
    for i in range(1, atoms + 1):
        facts.append(Atom(f"a{i}_1", (Constant("u"),)))
        facts.append(Atom(f"c{i}", (Constant("v"),)))
        if i < atoms:
            facts.append(Atom(f"a{i}_{min(2, derivers)}", (Constant("w"),)))
    return Database(facts)


def run_family():
    budget = RewritingBudget(max_depth=50, max_cqs=100_000, strict=False)
    rows = []
    for atoms in SIZES:
        rules, query = blowup_family(atoms)
        start = time.perf_counter()
        ucq_result = rewrite(query, rules, budget)
        ucq_time = time.perf_counter() - start
        start = time.perf_counter()
        datalog = rewrite_datalog(query, rules, budget)
        datalog_time = time.perf_counter() - start
        assert ucq_result.complete and datalog.complete

        engine = FORewritingEngine(rules, budget=budget, target="auto")
        auto_target = engine.resolve_target(query)

        database = family_database(atoms)
        memory = datalog.answer(database)
        chase = certain_answers(query, rules, database)
        agree = (
            memory == chase
            and memory == frozenset({(Constant("u"),), (Constant("v"),)})
        )
        rows.append(
            {
                "atoms": atoms,
                "ucq_disjuncts": ucq_result.size,
                "datalog_rules": datalog.size,
                "auto_target": auto_target,
                "answers_agree": agree,
                "ucq_ms": round(ucq_time * 1000, 3),
                "datalog_ms": round(datalog_time * 1000, 3),
            }
        )
    return rows


def test_blowup_family(benchmark):
    rows = benchmark.pedantic(run_family, rounds=1, iterations=1)

    _, metrics = capture_stage_metrics(run_family)
    counters = metrics["counters"]
    assert counters["datalog_target.rules_emitted"] > 0
    assert counters["engine.target_selected.datalog"] > 0

    largest = rows[-1]
    reduction = largest["ucq_disjuncts"] / largest["datalog_rules"]
    # The tentpole claim, counter-gated: exponential disjunct growth
    # collapses to polynomially many rules.
    assert reduction >= MIN_REDUCTION, rows
    assert all(row["answers_agree"] for row in rows)
    # auto switches exactly when the estimated bound crosses the
    # threshold (4^5 = 1024 > 512 >= 4^4 = 256).
    assert largest["auto_target"] == "datalog"
    assert rows[0]["auto_target"] == "ucq"

    lines = [
        "Blowup family: UCQ explosion vs Datalog-target rules",
        f"(k = {DERIVERS} derivers per joined relation)",
        "",
        "atoms  UCQ disjuncts  Datalog rules  auto picks  agree",
    ]
    for row in rows:
        lines.append(
            f"{row['atoms']:>5}  {row['ucq_disjuncts']:>13}  "
            f"{row['datalog_rules']:>13}  {row['auto_target']:>10}  "
            f"{'yes' if row['answers_agree'] else 'NO'}"
        )
    lines += [
        "",
        f"reduction at the largest size: "
        f"{largest['ucq_disjuncts']} disjuncts -> "
        f"{largest['datalog_rules']} rules "
        f"({reduction:.1f}x, gate >= {MIN_REDUCTION:.0f}x)",
    ]
    write_artifact("blowup_family.txt", "\n".join(lines))
    write_json_artifact(
        "blowup_family.json",
        {
            "schema": 1,
            "derivers": DERIVERS,
            "cases": rows,
            "reduction_at_largest": round(reduction, 2),
            "counters": {
                "datalog_target.rules_emitted": counters[
                    "datalog_target.rules_emitted"
                ],
                "engine.target_selected.datalog": counters[
                    "engine.target_selected.datalog"
                ],
                "engine.target_selected.ucq": counters[
                    "engine.target_selected.ucq"
                ],
            },
        },
    )
