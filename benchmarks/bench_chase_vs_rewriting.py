"""E10 -- data complexity: rewriting vs materialisation (chase).

FO-rewritability puts ontology QA in AC0 data complexity: the
(query-dependent) rewriting is computed once, and each database is
only ever touched by plain query evaluation.  The chase instead does
reasoning work proportional to the data.  This bench runs the same
university query over growing databases both ways; the artifact is the
timing series, whose shape -- chase cost growing with the data while
the rewriting-evaluation cost stays an order of magnitude smaller --
is the paper's motivating trade-off.
"""

import time

from _harness import write_artifact

from repro.chase.certain import certain_answers
from repro.data.evaluation import evaluate_ucq
from repro.lang.parser import parse_query
from repro.rewriting.rewriter import rewrite
from repro.workloads.ontologies import university_data, university_ontology

SIZES = (20, 40, 80, 160)
QUERY = parse_query("q(X) :- employee(X)")


def series():
    rules = university_ontology()
    rewriting = rewrite(QUERY, rules)
    assert rewriting.complete
    rows = []
    for size in SIZES:
        database = university_data(size, seed=size)
        start = time.perf_counter()
        via_rewriting = evaluate_ucq(rewriting.ucq, database)
        rewriting_time = time.perf_counter() - start
        start = time.perf_counter()
        via_chase = certain_answers(QUERY, rules, database)
        chase_time = time.perf_counter() - start
        assert via_rewriting == via_chase
        rows.append(
            (size, len(database), len(via_rewriting), rewriting_time, chase_time)
        )
    return rows


def test_chase_vs_rewriting(benchmark):
    rows = benchmark.pedantic(series, rounds=1, iterations=1)

    # Shape check: the chase pays more than evaluating the rewriting,
    # and its advantage-gap does not shrink as the data grows.
    assert all(chase > rew for _, _, _, rew, chase in rows)

    lines = [
        "E10 -- answering q(X) :- employee(X) over growing databases",
        "",
        "size  facts  answers  rewriting-eval(s)  chase(s)  speedup",
    ]
    for size, facts, answers, rew, chase in rows:
        lines.append(
            f"{size:>4}  {facts:>5}  {answers:>7}  {rew:>17.4f}  "
            f"{chase:>8.4f}  {chase / max(rew, 1e-9):>6.1f}x"
        )
    lines += [
        "",
        "the rewriting is computed once per query (data-independent);",
        "per-database work is plain CQ evaluation.  The chase re-derives",
        "consequences per database -- the cost the OBDA architecture",
        "avoids.",
    ]
    write_artifact("chase_vs_rewriting.txt", "\n".join(lines))
