"""E12 -- approximation for badly-behaved sets (Section 7).

When a TGD set is not WR (situation (iii) of Section 7), exact
FO-rewriting is off the table, but depth-capped rewriting still yields
a *sound* under-approximation of the certain answers that grows
monotonically with depth.  This bench runs the converging
approximation on Example 2 and reports the per-depth answer counts
against the chase ground truth (which terminates on this instance).
"""

from _harness import write_artifact

from repro.chase.certain import certain_answers
from repro.data.database import Database
from repro.lang.parser import parse_database
from repro.rewriting.approx import approximate_answers
from repro.workloads.paper import EXAMPLE2_QUERY, example2

# The only derivation of r("a", _) needs TWO rule applications
# (R2 after R1 over the t/r chain), so the approximation starts empty
# and the answer appears at depth 2 -- genuine convergence, not a
# depth-1 hit.
DATA = """
    t(b, a). r(b, e).
"""


def test_approximation_convergence(benchmark):
    rules = example2()
    database = Database(parse_database(DATA))

    report = benchmark(
        lambda: approximate_answers(
            EXAMPLE2_QUERY, rules, database, max_depth=8
        )
    )

    truth = certain_answers(EXAMPLE2_QUERY, rules, database)
    assert report.answers <= truth
    counts = list(report.answer_counts)
    assert counts == sorted(counts)
    assert counts[0] == 0 and counts[-1] == 1  # non-trivial convergence

    lines = [
        'E12 -- sound approximation of q() :- r("a", X) over Example 2',
        "",
        "depth  partial-UCQ-size  answers",
    ]
    lines.extend(
        f"{depth:>5}  {size:>16}  {count:>7}"
        for depth, size, count in zip(
            report.depths, report.ucq_sizes, report.answer_counts
        )
    )
    lines += [
        "",
        f"chase ground truth on this instance: {len(truth)} answer(s)",
        f"approximation reached the truth: {report.answers == truth}",
        f"exact (rewriting completed): {report.exact}",
        "",
        "every reported answer is certain (soundness); deeper budgets",
        "only add answers (monotone convergence from below) -- the",
        "Section 7 recipe for sets outside WR.",
    ]
    write_artifact("approximation.txt", "\n".join(lines))
