"""E13 -- new FO-rewritable DL languages (Section 6's closing claim).

The paper: WR "allows for the identification of new FO-rewritable
Description Logic languages".  Concrete instance: DL-Lite_R extended
with *qualified existential restrictions*.  Right-hand-side qualified
existentials translate to multi-atom-head TGDs with a shared
existential variable -- outside simple TGDs (hence outside SWR and the
position graph entirely) -- yet the translated TBoxes are WR, their
rewritings terminate, and ABox satisfiability w.r.t. disjointness
axioms is itself solved by FO rewriting.
"""

from _harness import write_artifact

from repro.core.swr import is_swr
from repro.core.wr import is_wr
from repro.data.csvio import facts_from_rows
from repro.data.database import Database
from repro.dlite.extended import extended_tbox_to_tgds, is_satisfiable
from repro.lang.parser import parse_query
from repro.lang.printer import format_program
from repro.rewriting.rewriter import rewrite
from repro.workloads.clinic import CLINIC_TBOX_TEXT, clinic_tbox


def test_extended_dl(benchmark):
    tbox = clinic_tbox()
    rules = extended_tbox_to_tgds(tbox)

    def classify_and_rewrite():
        swr = is_swr(rules)
        wr = is_wr(rules)
        results = [
            rewrite(parse_query(text), rules)
            for text in (
                "q(X) :- Clinician(X)",
                "q(X) :- Patient(X)",
                "q(X, W) :- worksIn(X, W), Ward(W)",
            )
        ]
        return swr, wr, results

    swr, wr, results = benchmark.pedantic(
        classify_and_rewrite, rounds=1, iterations=1
    )
    assert not swr.is_swr      # multi-head rules: outside simple TGDs
    assert wr.is_wr            # but Weakly Recursive
    assert all(result.complete for result in results)

    abox = Database(
        facts_from_rows("Doctor", [("house",)])
        + facts_from_rows("treats", [("house", "p1")])
    )
    satisfiable, _ = is_satisfiable(tbox, abox, rules=rules)
    assert satisfiable
    bad = Database(
        facts_from_rows("Doctor", [("x",)])
        + facts_from_rows("Patient", [("x",)])
    )
    unsat, violated = is_satisfiable(tbox, bad, rules=rules)
    assert not unsat and violated

    lines = [
        "E13 -- DL-Lite_R + qualified existentials: a 'new' FO-rewritable DL",
        "",
        "TBox:",
        CLINIC_TBOX_TEXT.strip(),
        "",
        "translated TGDs:",
        format_program(rules),
        "",
        f"SWR: {swr.is_swr} (multi-atom heads: outside simple TGDs)",
        f"WR : {wr.is_wr}",
        "rewritings of the three workload queries: all terminate "
        f"({', '.join(str(r.size) for r in results)} disjuncts)",
        "ABox satisfiability via FO rewriting: consistent ABox accepted,",
        f"Doctor∧Patient ABox rejected ({violated[0]}).",
        "",
        "qualified existentials are not expressible in DL-Lite_R; the",
        "translated rule set is nonetheless WR -- the concrete sense in",
        "which the graph-based classes 'identify new FO-rewritable DL",
        "languages' (Section 6).",
    ]
    write_artifact("extended_dl.txt", "\n".join(lines))
