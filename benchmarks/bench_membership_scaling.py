"""E8 -- complexity scaling of the membership checks.

The paper: SWR membership is PTIME; WR membership rises to PSPACE once
constants and repeated variables are allowed ("this approach does not
scale very well", Section 7).  This bench measures wall-clock time of
both checks on growing inputs: disjoint copies of an SWR pattern for
the SWR check (near-linear growth expected) and of Example 2 for the
WR check (still polynomial here because copies are disjoint, but with a
visibly larger constant: the P-node graph enumerates contexts).
"""

import time

from _harness import write_artifact

from repro.core.swr import is_swr
from repro.core.wr import is_wr
from repro.workloads.generators import dangerous_family, swr_but_not_baselines

SWR_SIZES = (2, 4, 8, 16, 32)
WR_SIZES = (1, 2, 4, 8)


def measure(check, families):
    rows = []
    for size, rules in families:
        start = time.perf_counter()
        check(rules)
        elapsed = time.perf_counter() - start
        rows.append((size, len(rules), elapsed))
    return rows


def test_swr_membership_scaling(benchmark):
    rules = swr_but_not_baselines(copies=max(SWR_SIZES))
    benchmark(lambda: is_swr(rules))

    rows = measure(
        is_swr,
        [(size, swr_but_not_baselines(copies=size)) for size in SWR_SIZES],
    )
    lines = [
        "E8a -- SWR membership check scaling (PTIME claim)",
        "",
        "copies  rules  seconds",
    ]
    lines.extend(
        f"{size:>6}  {count:>5}  {elapsed:.4f}" for size, count, elapsed in rows
    )
    ratio = rows[-1][2] / max(rows[0][2], 1e-9)
    growth = SWR_SIZES[-1] / SWR_SIZES[0]
    lines += [
        "",
        f"time grew {ratio:.1f}x for a {growth:.0f}x larger input "
        "(polynomial, as claimed).",
    ]
    write_artifact("membership_scaling_swr.txt", "\n".join(lines))


def test_wr_membership_scaling(benchmark):
    rules = dangerous_family(copies=max(WR_SIZES))
    benchmark(lambda: is_wr(rules))

    rows = measure(
        is_wr,
        [(size, dangerous_family(copies=size)) for size in WR_SIZES],
    )
    lines = [
        "E8b -- WR membership check scaling (the heavier condition)",
        "",
        "copies  rules  seconds",
    ]
    lines.extend(
        f"{size:>6}  {count:>5}  {elapsed:.4f}" for size, count, elapsed in rows
    )
    lines += [
        "",
        "the P-node graph tracks atoms-with-context rather than bare",
        "positions; the membership check is visibly costlier than SWR",
        "on inputs of the same size (PSPACE-vs-PTIME claim, Section 6).",
    ]
    write_artifact("membership_scaling_wr.txt", "\n".join(lines))
