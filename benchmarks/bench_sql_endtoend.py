"""E9 -- FO-rewritability in practice: ontology QA as plain SQL.

The whole point of FO-rewritability (Section 1): a CQ over the
ontology becomes "an equivalent SQL query over the original database".
This bench answers the university workload three ways -- in-memory
evaluation of the rewriting, the rewriting compiled to SQLite SQL, and
the chase oracle -- asserts all three agree, and measures the SQL path.
The artifact shows, per query, the rewriting size and the SQL text
length (the 'cost' of reasoning pushed into the query).
"""

from _harness import write_artifact

from repro.lang.printer import format_table
from repro.obda.system import OBDASystem
from repro.workloads.ontologies import (
    university_data,
    university_ontology,
    university_queries,
)

DB_SIZE = 60


def test_sql_end_to_end(benchmark):
    ontology = university_ontology()
    database = university_data(DB_SIZE, seed=9)
    queries = university_queries()

    with OBDASystem(ontology, database) as system:
        # Warm the rewriting cache and SQLite schema outside the timer:
        # OBDA amortizes rewriting across many executions.
        for _, query in queries:
            system.certain_answers_sql(query)

        def run_sql_workload():
            return [
                len(system.certain_answers_sql(query)) for _, query in queries
            ]

        counts = benchmark(run_sql_workload)

        rows = []
        for (name, query), count in zip(queries, counts):
            rewriting = system.engine.rewrite(query)
            memory = system.certain_answers(query)
            chase = system.certain_answers_chase(query)
            sql = system.certain_answers_sql(query)
            assert memory == chase == sql, name
            rows.append(
                (
                    name,
                    rewriting.size,
                    len(system.sql_for(query)),
                    count,
                )
            )

    table = format_table(
        ("query", "UCQ disjuncts", "SQL chars", "answers"), rows
    )
    lines = [
        f"E9 -- university workload over a {len(database)}-fact database",
        "",
        table,
        "",
        "all three answering paths (in-memory rewriting, SQLite SQL,",
        "chase oracle) returned identical answers for every query.",
    ]
    write_artifact("sql_endtoend.txt", "\n".join(lines))
