"""Concurrency-audit wall-time budget over the repo's own source.

CI dogfoods ``repro audit --strict src/repro`` as a blocking job, so
the analyzer's end-to-end cost on the real tree is a latency budget,
not a curiosity.  This bench runs the full pipeline (file discovery,
parsing, all RL3xx passes, suppression handling) over ``src/repro``
and gates the wall time under 10 seconds -- far above today's cost, so
only a pathological regression (e.g. an accidentally quadratic pass)
trips it, never runner noise.

The JSON artifact also pins the *deterministic* shape of the dogfood
run: file count and finding counts.  Those are compared against the
committed baseline by ``compare_baselines.py`` (the ``seconds`` key is
timing-exempt as everywhere), so a new finding sneaking into the tree
-- or a pass silently dying and reporting nothing -- shows up as
baseline drift even though the strict CI job is a separate gate.
"""

import time
from pathlib import Path

from _harness import write_artifact, write_json_artifact

from repro.audit import AuditConfig, audit_paths
from repro.lint.diagnostics import Severity

REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"
BUDGET_SECONDS = 10.0


def test_audit_overhead_on_own_source(benchmark):
    report = benchmark(lambda: audit_paths([REPO_SRC], AuditConfig()))

    start = time.perf_counter()
    report = audit_paths([REPO_SRC], AuditConfig())
    seconds = time.perf_counter() - start

    files = {d.file for d in report.diagnostics if d.file}
    errors = sum(1 for d in report.diagnostics if d.severity is Severity.ERROR)
    warnings = sum(
        1 for d in report.diagnostics if d.severity is Severity.WARNING
    )
    infos = sum(1 for d in report.diagnostics if d.severity is Severity.INFO)
    source_files = sorted(REPO_SRC.rglob("*.py"))

    payload = {
        "seconds": round(seconds, 4),
        "budget_seconds": BUDGET_SECONDS,
        "source_files": len(source_files),
        "errors": errors,
        "warnings": warnings,
        "infos": infos,
    }
    write_json_artifact("audit_overhead.json", payload)
    write_artifact(
        "audit_overhead.txt",
        "\n".join(
            [
                f"repro audit over src/repro ({len(source_files)} files)",
                "",
                f"wall time    {seconds:.3f}s (budget {BUDGET_SECONDS:.0f}s)",
                f"findings     {errors} errors, {warnings} warnings, "
                f"{infos} infos in {len(files)} files",
            ]
        ),
    )

    assert seconds < BUDGET_SECONDS, (
        f"audit of src/repro took {seconds:.2f}s (budget {BUDGET_SECONDS}s)"
    )
    # The dogfood gate in CI runs strict: errors and warnings must be
    # zero here too, or the audit job is already red.
    assert errors == 0 and warnings == 0
