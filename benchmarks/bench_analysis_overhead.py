"""Constraint-interaction analyzer overhead and the SPLIT payoff, gated.

The termination lattice + separability analysis of ``repro.analysis``
runs inside the strategy decision procedure and the ``repro check``
interaction stage, so it must be nearly free next to the work it
steers.  The first test measures a *cold* full analysis (graph +
certificate caches cleared every run) against classification over the
curated corpus and asserts it costs <10%.

The second test gates the SPLIT strategy on its observability
counters: answering the split workload must perform exactly one
separation (a proper one), and its answers must match both the pure
chase lower bound and the direct core-chase + residual-rewriting
composition.
"""

import time

from _harness import write_artifact, write_json_artifact

from repro import obs
from repro.analysis import (
    analyze,
    clear_certificate_cache,
    clear_graph_cache,
    termination_certificate,
)
from repro.chase.certain import certain_answers_via_chase
from repro.core.classify import classify
from repro.obda.strategy import Strategy, answer_with_best_strategy
from repro.workloads.corpus import CORPUS
from repro.workloads.interaction import split_workload


def _best_seconds(fn, repeat=5):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


RULE_SETS = tuple(entry.rules() for entry in CORPUS)


def _cold_analysis():
    clear_graph_cache()
    clear_certificate_cache()
    for rules in RULE_SETS:
        analyze(rules)


def _classify_corpus():
    for rules in RULE_SETS:
        classify(rules)


def test_analysis_overhead(benchmark):
    benchmark(_cold_analysis)

    analysis_s = _best_seconds(_cold_analysis)
    classify_s = _best_seconds(_classify_corpus)
    overhead = analysis_s / classify_s

    # Deterministic census of the corpus through the lattice.
    histogram = {"weak": 0, "joint": 0, "super-weak": 0, "none": 0}
    for rules in RULE_SETS:
        level = termination_certificate(rules).level
        key = level.value.removesuffix("-acyclicity") if level else "none"
        histogram[key] += 1

    lines = [
        f"Constraint-interaction analysis over the corpus ({len(CORPUS)} "
        "rule sets), cold caches every run",
        "",
        "stage                    seconds   vs classify",
        f"full analysis (cold)     {analysis_s:.4f}    {overhead:6.1%}",
        f"classify                 {classify_s:.4f}    100.0%",
        "",
        "termination lattice census: "
        + ", ".join(f"{k}={v}" for k, v in histogram.items()),
    ]
    write_artifact("analysis_overhead.txt", "\n".join(lines))

    payload = {
        "schema": 1,
        "corpus_entries": len(CORPUS),
        "lattice_census": histogram,
        "analysis_s": round(analysis_s, 6),
        "classify_s": round(classify_s, 6),
        "overhead_over_classify": round(overhead, 4),
        "gate": 0.10,
    }

    assert overhead < 0.10, (
        f"cold analysis costs {overhead:.1%} of classification "
        "(budget: <10%)"
    )

    # --- SPLIT payoff, counter-gated -------------------------------
    rules, query, database = split_workload()
    with obs.capture() as captured:
        report = answer_with_best_strategy(query, rules, database)
    assert report.strategy is Strategy.SPLIT
    assert report.exact
    assert captured.counter("analysis.separations") == 1
    assert captured.counter("analysis.proper_separations") == 1

    lower = certain_answers_via_chase(
        query, rules, database, max_steps=5_000, strict=False
    )
    assert report.answers == lower.answers

    payload.update(
        {
            "split_strategy": report.strategy.value,
            "split_answers": len(report.answers),
            "split_core_rules": len(report.partition.core),
            "split_residual_rules": len(report.partition.residual),
            "separations": int(captured.counter("analysis.separations")),
            "proper_separations": int(
                captured.counter("analysis.proper_separations")
            ),
        }
    )
    write_json_artifact("analysis_overhead.json", payload)
