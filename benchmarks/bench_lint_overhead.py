"""Lint preflight overhead vs. classification.

``repro classify`` and ``repro rewrite`` run the error-level lint
preflight before their real work; that safety net is only acceptable
if it is nearly free.  This bench measures, over the curated corpus,
the total time of (a) the preflight subset, (b) a full lint run and
(c) ``classify``, and asserts the preflight costs <10% of
classification.
"""

import time

from _harness import write_artifact

from repro.core.classify import classify
from repro.lint.engine import lint_program, preflight
from repro.workloads.corpus import CORPUS


def _total_seconds(fn, programs, repeat=5):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        for rules in programs:
            fn(rules)
        best = min(best, time.perf_counter() - start)
    return best


def test_lint_preflight_overhead(benchmark):
    programs = [entry.rules() for entry in CORPUS]
    benchmark(lambda: [preflight(rules) for rules in programs])

    preflight_s = _total_seconds(preflight, programs)
    full_lint_s = _total_seconds(lint_program, programs)
    classify_s = _total_seconds(classify, programs)
    overhead = preflight_s / classify_s

    lines = [
        "Lint preflight overhead over the curated corpus "
        f"({len(programs)} rule sets)",
        "",
        "stage               seconds   vs classify",
        f"preflight (RL001)   {preflight_s:.4f}    {overhead:6.1%}",
        f"full lint           {full_lint_s:.4f}    {full_lint_s / classify_s:6.1%}",
        f"classify            {classify_s:.4f}    100.0%",
        "",
        "The preflight that classify/rewrite run before real work "
        f"costs {overhead:.1%} of classification.",
    ]
    write_artifact("lint_overhead.txt", "\n".join(lines))

    assert overhead < 0.10, (
        f"lint preflight costs {overhead:.1%} of classify (budget: <10%)"
    )
