"""E11 -- the DL-Lite connection (Sections 1 and 6).

DL-Lite_R is the flagship FO-rewritable DL family; the paper's classes
must (and do) cover it.  This bench translates a randomly generated
DL-Lite_R TBox into TGDs, checks the result is simple + linear + SWR,
and measures translation-plus-check throughput.  The artifact records
the per-TBox verdicts.
"""

import random

from _harness import write_artifact

from repro.classes.linear import is_linear
from repro.core.swr import is_swr
from repro.dlite.syntax import (
    AtomicConcept,
    AtomicRole,
    ConceptInclusion,
    Exists,
    Inverse,
    RoleInclusion,
    TBox,
)
from repro.dlite.translate import tbox_to_tgds

N_TBOXES = 20
AXIOMS_PER_TBOX = 12


def random_tbox(rng):
    concepts = [AtomicConcept(f"c{i}") for i in range(5)]
    roles = [AtomicRole(f"p{i}") for i in range(4)]

    def concept():
        if rng.random() < 0.5:
            return rng.choice(concepts)
        role = rng.choice(roles)
        return Exists(Inverse(role) if rng.random() < 0.5 else role)

    def role():
        picked = rng.choice(roles)
        return Inverse(picked) if rng.random() < 0.5 else picked

    axioms = []
    for _ in range(AXIOMS_PER_TBOX):
        if rng.random() < 0.7:
            axioms.append(ConceptInclusion(concept(), concept()))
        else:
            axioms.append(RoleInclusion(role(), role()))
    return TBox(tuple(axioms))


def translate_and_check():
    rows = []
    for seed in range(N_TBOXES):
        tbox = random_tbox(random.Random(seed))
        rules = tbox_to_tgds(tbox)
        swr = is_swr(rules)
        rows.append(
            (seed, len(rules), bool(is_linear(rules)), swr.is_swr)
        )
    return rows


def test_dlite_translation(benchmark):
    rows = benchmark(translate_and_check)
    assert all(linear and swr for _, _, linear, swr in rows)

    lines = [
        "E11 -- DL-Lite_R TBoxes translated to TGDs",
        "",
        "tbox  rules  linear  SWR",
    ]
    lines.extend(
        f"{seed:>4}  {count:>5}  {str(linear).lower():>6}  "
        f"{str(swr).lower()}"
        for seed, count, linear, swr in rows
    )
    lines += [
        "",
        f"all {N_TBOXES} random TBoxes translate to simple, linear, SWR",
        "TGD sets: the paper's class covers the DL-Lite_R fragment.",
    ]
    write_artifact("dlite_translation.txt", "\n".join(lines))
