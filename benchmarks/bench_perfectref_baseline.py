"""Baseline comparison: PerfectRef-style vs the general piece engine.

PerfectRef is the classical DL-Lite rewriting algorithm; the general
piece-unification engine must agree with it wherever both apply
(linear TGDs) and additionally handles everything PerfectRef cannot
(joins in bodies, multi-atom heads).  The artifact reports, per
workload: agreement of the final UCQs, sizes, and timings -- plus the
inputs where only the general engine works.
"""

import time

from _harness import capture_stage_metrics, write_artifact, write_json_artifact

from repro.lang.errors import NotSupportedError
from repro.lang.parser import parse_query
from repro.rewriting.perfectref import perfectref_rewrite
from repro.rewriting.rewriter import rewrite
from repro.workloads.generators import concept_hierarchy, role_chain
from repro.workloads.ontologies import university_ontology
from repro.workloads.paper import example3
from repro.dlite.translate import tbox_to_tgds
from repro.dlite.syntax import (
    AtomicConcept,
    AtomicRole,
    ConceptInclusion,
    Exists,
    Inverse,
    TBox,
)


def dl_lite_workload():
    concepts = [AtomicConcept(f"C{i}") for i in range(4)]
    role = AtomicRole("rel")
    tbox = TBox(
        (
            ConceptInclusion(concepts[0], concepts[1]),
            ConceptInclusion(concepts[1], concepts[2]),
            ConceptInclusion(concepts[2], Exists(role)),
            ConceptInclusion(Exists(Inverse(role)), concepts[3]),
        )
    )
    return tbox_to_tgds(tbox), parse_query("q(X) :- C3(X)")


CASES = (
    (
        "hierarchy-16",
        concept_hierarchy(16),
        parse_query("q(X) :- c16(X)"),
    ),
    ("role-chain-8", role_chain(8), parse_query("q() :- r8(X, Y)")),
    ("dl-lite-tbox", *dl_lite_workload()),
)

GENERAL_ONLY = (
    ("university (joins)", university_ontology(), "q(X) :- employee(X)"),
    ("paper example 3", example3(), "q(X, Y) :- r(X, Y)"),
)


def compare_all():
    rows = []
    for name, rules, query in CASES:
        start = time.perf_counter()
        baseline = perfectref_rewrite(query, rules)
        baseline_time = time.perf_counter() - start
        start = time.perf_counter()
        general = rewrite(query, rules)
        general_time = time.perf_counter() - start
        assert baseline.complete and general.complete
        assert baseline.ucq == general.ucq, name
        rows.append(
            (name, baseline.size, baseline_time, general_time, "yes")
        )
    return rows


def test_perfectref_baseline(benchmark):
    rows = benchmark.pedantic(compare_all, rounds=1, iterations=1)

    # Counter-gated run: both rewriters route their minimization
    # through the subsumption kernel, so the pipeline must show the
    # filter/bucket fast paths engaging (pairs skipped, hom searches a
    # strict subset of pairs considered) on every linear workload.
    _, metrics = capture_stage_metrics(compare_all)
    counters = metrics["counters"]
    assert counters["minimize.subsumption_checks"] > 0
    assert counters["minimize.pairs_skipped"] > 0
    # On these DL-shaped workloads the filters reject every
    # incomparable pair outright -- hom searches are a strict subset of
    # pairs considered (often zero, hence the absent-counter default).
    assert (
        counters.get("minimize.hom_checks", 0)
        < counters["minimize.subsumption_checks"]
    )
    assert counters["perfectref.cqs_generated"] > 0

    beyond = []
    for name, rules, query_text in GENERAL_ONLY:
        query = parse_query(query_text)
        try:
            perfectref_rewrite(query, rules)
            baseline_status = "unexpectedly accepted"
        except NotSupportedError:
            baseline_status = "out of scope"
        result = rewrite(query, rules)
        assert result.complete
        beyond.append((name, baseline_status, result.size))

    lines = [
        "Baseline comparison: PerfectRef-style vs general piece engine",
        "",
        "case           disjuncts  perfectref(s)  general(s)  same UCQ",
    ]
    for name, size, b_time, g_time, same in rows:
        lines.append(
            f"{name:<14} {size:>9}  {b_time:>13.4f}  {g_time:>10.4f}  {same}"
        )
    lines += ["", "inputs beyond the baseline's scope:"]
    for name, status, size in beyond:
        lines.append(
            f"  {name}: baseline {status}; general engine completes "
            f"with {size} disjuncts"
        )
    lines += [
        "",
        "identical UCQs on every linear workload; the general engine's",
        "extra machinery (piece aggregation, subsumption pruning) is",
        "what extends coverage to the paper's target class.",
        "",
        "minimization kernel counters over all cases:",
        f"  pairs considered: {counters['minimize.subsumption_checks']}",
        f"  pairs skipped:    {counters['minimize.pairs_skipped']}",
        f"  hom searches:     {counters.get('minimize.hom_checks', 0)}",
    ]
    write_artifact("perfectref_baseline.txt", "\n".join(lines))
    write_json_artifact(
        "perfectref_baseline.json",
        {
            "schema": 1,
            "cases": [
                {
                    "name": name,
                    "disjuncts": size,
                    "perfectref_ms": round(b_time * 1000, 3),
                    "general_ms": round(g_time * 1000, 3),
                    "same_ucq": same == "yes",
                }
                for name, size, b_time, g_time, same in rows
            ],
            "counters": counters,
        },
    )
