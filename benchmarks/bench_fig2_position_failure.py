"""E3/E4 -- Figure 2 and the unbounded chain of Example 2.

Two artifacts:

* the position graph of Example 2 (Figure 2), which carries no
  ``s``-edge and no dangerous cycle -- the criterion wrongly passes;
* the growth series of the rewriting of ``q() :- r("a", X)``: the
  number of generated CQs and the widest join never stop growing (the
  "unbounded chain" the paper uses to prove non-FO-rewritability).
"""

from _harness import write_artifact

from repro.core.swr import is_swr
from repro.graphs.dot import position_graph_to_dot
from repro.graphs.position_graph import build_position_graph
from repro.lang.printer import format_program
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.rewriter import rewrite
from repro.workloads.paper import EXAMPLE2_QUERY, example2

GROWTH_DEPTHS = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)


def test_figure2_position_graph(benchmark):
    rules = example2()
    graph = benchmark(lambda: build_position_graph(rules))

    swr = is_swr(rules)
    assert graph.s_edges() == ()
    assert graph.dangerous_cycle() is None
    assert swr.graph_condition and not swr.simple

    artifact = "\n".join(
        [
            "Figure 2 -- position graph AG(P) of Example 2 (failure case)",
            "",
            "input TGDs (NOT simple: repeated variable in body(R2)):",
            format_program(rules),
            "",
            graph.summary(),
            "",
            "s-edges: 0, dangerous (m+s) cycle: none",
            "=> the position-graph criterion suggests FO-rewritability,",
            "   but the set is NOT FO-rewritable (see the growth series",
            "   artifact): within-atom variable repetition is invisible",
            "   to positions.  This motivates the P-node graph (Fig. 3).",
        ]
    )
    write_artifact("figure2_position_graph.txt", artifact)
    write_artifact(
        "figure2_position_graph.dot", position_graph_to_dot(graph, "Fig2")
    )


def test_unbounded_chain_growth(benchmark):
    rules = example2()

    def grow():
        rows = []
        for depth in GROWTH_DEPTHS:
            result = rewrite(
                EXAMPLE2_QUERY,
                rules,
                RewritingBudget(max_depth=depth, max_cqs=100_000),
            )
            rows.append(
                (
                    depth,
                    result.generated,
                    result.size,
                    result.max_body_atoms,
                    result.complete,
                )
            )
        return rows

    rows = benchmark.pedantic(grow, rounds=1, iterations=1)

    widths = [row[3] for row in rows]
    assert widths == sorted(widths) and widths[-1] > widths[0]
    assert not any(row[4] for row in rows)

    lines = [
        'E4 -- unbounded chain: rewriting q() :- r("a", X) over Example 2',
        "",
        "depth  CQs-generated  UCQ-size  widest-join  complete",
    ]
    lines.extend(
        f"{depth:>5}  {generated:>13}  {size:>8}  {width:>11}  {complete}"
        for depth, generated, size, width, complete in rows
    )
    lines += [
        "",
        "the widest join grows linearly with depth and the rewriting",
        "never completes: each round introduces a fresh existential",
        "join variable (the paper's 'unbounded chain').",
    ]
    write_artifact("example2_unbounded_chain.txt", "\n".join(lines))
