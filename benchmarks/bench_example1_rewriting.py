"""E2 -- Theorem 1 on Example 1: the rewriting terminates and is exact.

Measures the UCQ rewriting of the atomic query over Example 1 and
validates it against chase-computed certain answers on seeded random
databases.  The artifact lists the final UCQ -- the "equivalent FO
query" of Definition 1.
"""

import random

from _harness import capture_stage_metrics, stage_summary, write_artifact, write_json_artifact

from repro.chase.certain import certain_answers
from repro.data.database import Database
from repro.data.evaluation import evaluate_ucq
from repro.lang.printer import format_ucq
from repro.rewriting.rewriter import rewrite
from repro.workloads.generators import generate_database
from repro.workloads.paper import EXAMPLE1_QUERY, example1


def test_example1_rewriting(benchmark):
    rules = example1()

    result = benchmark(lambda: rewrite(EXAMPLE1_QUERY, rules))
    assert result.complete

    # One instrumented run for the per-stage breakdown artifact.
    _, metrics = capture_stage_metrics(lambda: rewrite(EXAMPLE1_QUERY, rules))
    write_json_artifact("example1_rewriting.json", metrics)

    checks = []
    for seed in range(5):
        facts = generate_database(
            random.Random(seed), rules, facts_per_relation=5, domain_size=6
        )
        database = Database(facts)
        via_rewriting = evaluate_ucq(result.ucq, database)
        via_chase = certain_answers(EXAMPLE1_QUERY, rules, database)
        assert via_rewriting == via_chase
        checks.append((seed, len(database), len(via_rewriting)))

    lines = [
        "E2 -- FO rewriting of q(X) :- r(X, Y) over Example 1",
        "",
        f"rewriting complete: {result.complete} "
        f"(depth {result.depth_reached}, {result.generated} CQs explored)",
        "final UCQ (the FO query q' of Definition 1):",
        format_ucq(result.ucq),
        "",
        "validation against chase certain answers:",
        "seed  |D|  |answers|  match",
    ]
    lines.extend(
        f"{seed:>4}  {size:>3}  {count:>9}  yes" for seed, size, count in checks
    )
    lines.append("")
    lines.append(stage_summary(metrics))
    write_artifact("example1_rewriting.txt", "\n".join(lines))
