"""Regression tests for the engine's rewriting-cache keying.

The cache is keyed by the UCQ's canonical form, so any two queries
equal up to injective variable renaming and body-atom reordering must
share one entry.  Hits and misses are observable both through
``FORewritingEngine.cache_info()`` and the ``engine.cache_hits`` /
``engine.cache_misses`` counters of :mod:`repro.obs`.
"""

from __future__ import annotations

from repro import obs
from repro.lang.parser import parse_program, parse_query
from repro.lang.queries import UnionOfConjunctiveQueries
from repro.rewriting.engine import FORewritingEngine

RULES = parse_program(
    """
    r1: professor(X) -> faculty(X).
    r2: faculty(X) -> teaches(X, Y).
    r3: dean(X) -> professor(X).
    """
)


def test_identical_query_hits_cache():
    engine = FORewritingEngine(RULES)
    query = parse_query("q(X) :- faculty(X)")
    with obs.capture() as cap:
        engine.rewrite(query)
        engine.rewrite(query)
    assert engine.cache_info().hits == 1
    assert engine.cache_info().misses == 1
    assert engine.cache_info().size == 1
    assert cap.counter("engine.cache_hits") == 1
    assert cap.counter("engine.cache_misses") == 1


def test_alpha_renamed_query_hits_same_entry():
    engine = FORewritingEngine(RULES)
    with obs.capture() as cap:
        first = engine.rewrite(parse_query("q(X) :- teaches(X, Y)"))
        second = engine.rewrite(parse_query("q(A) :- teaches(A, B)"))
    assert engine.cache_info() == (1, 1, 1)
    assert cap.counter("engine.cache_hits") == 1
    assert first is second


def test_atom_reordered_query_hits_same_entry():
    engine = FORewritingEngine(RULES)
    with obs.capture() as cap:
        first = engine.rewrite(
            parse_query("q(X) :- faculty(X), teaches(X, Y)")
        )
        second = engine.rewrite(
            parse_query("q(X) :- teaches(X, Y), faculty(X)")
        )
    assert engine.cache_info() == (1, 1, 1)
    assert cap.counter("engine.cache_hits") == 1
    assert first is second


def test_renamed_and_reordered_query_hits_same_entry():
    engine = FORewritingEngine(RULES)
    first = engine.rewrite(
        parse_query("q(X) :- faculty(X), teaches(X, Y), professor(Z)")
    )
    second = engine.rewrite(
        parse_query("q(U) :- teaches(U, W), professor(V), faculty(U)")
    )
    assert engine.cache_info() == (1, 1, 1)
    assert first is second


def test_ucq_disjunct_order_hits_same_entry():
    engine = FORewritingEngine(RULES)
    cq1 = parse_query("q(X) :- faculty(X)")
    cq2 = parse_query("q(X) :- dean(X)")
    engine.rewrite(UnionOfConjunctiveQueries([cq1, cq2]))
    engine.rewrite(UnionOfConjunctiveQueries([cq2, cq1]))
    assert engine.cache_info() == (1, 1, 1)


def test_distinct_queries_miss():
    engine = FORewritingEngine(RULES)
    with obs.capture() as cap:
        engine.rewrite(parse_query("q(X) :- faculty(X)"))
        engine.rewrite(parse_query("q(X) :- professor(X)"))
        # Different answer tuple => different query, must not collide.
        engine.rewrite(parse_query("q(Y) :- teaches(X, Y)"))
        engine.rewrite(parse_query("q(X) :- teaches(X, Y)"))
    assert engine.cache_info() == (0, 4, 4)
    assert cap.counter("engine.cache_hits") == 0
    assert cap.counter("engine.cache_misses") == 4


def test_answer_paths_share_the_cached_rewriting(small_database):
    engine = FORewritingEngine(RULES)
    query = parse_query("q(X) :- faculty(X)")
    with obs.capture() as cap:
        engine.answer(query, small_database)
        engine.answer(parse_query("q(Z) :- faculty(Z)"), small_database)
    assert engine.cache_info().misses == 1
    assert engine.cache_info().hits == 1
    assert cap.counter("engine.cache_misses") == 1
