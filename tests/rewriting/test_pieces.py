"""Tests for repro.rewriting.pieces (the rewriting operator)."""

from repro.lang.parser import parse_query, parse_tgd
from repro.lang.terms import Constant, Variable
from repro.rewriting.pieces import factorizations, piece_rewritings


def rewritings(query_text, rule_text):
    query = parse_query(query_text)
    rule = parse_tgd(rule_text)
    return [step.query for step in piece_rewritings(query, rule)]


class TestBasicSteps:
    def test_atomic_rewriting(self):
        results = rewritings("q(X) :- b(X)", "a(X) -> b(X)")
        assert len(results) == 1
        assert results[0].canonical() == parse_query("q(X) :- a(X)").canonical()

    def test_relation_mismatch_gives_nothing(self):
        assert rewritings("q(X) :- c(X)", "a(X) -> b(X)") == []

    def test_body_carried_over(self):
        results = rewritings("q(X) :- b(X), other(X)", "a(X) -> b(X)")
        assert len(results) == 1
        assert {a.relation for a in results[0].body} == {"a", "other"}

    def test_multi_atom_body_introduced(self):
        results = rewritings("q(X) :- r(X, Z)", "s(X, Y), t(Y) -> r(X, Y)")
        assert len(results) == 1
        assert {a.relation for a in results[0].body} == {"s", "t"}


class TestExistentialConstraints:
    def test_unshared_variable_may_meet_existential(self):
        results = rewritings("q(X) :- r(X, Y)", "a(X) -> r(X, Z)")
        assert len(results) == 1
        assert results[0].body[0].relation == "a"

    def test_answer_variable_blocks_existential(self):
        # Y is an answer variable: it cannot be an invented null.
        assert rewritings("q(X, Y) :- r(X, Y)", "a(X) -> r(X, Z)") == []

    def test_constant_blocks_existential(self):
        assert rewritings('q(X) :- r(X, "c")', "a(X) -> r(X, Z)") == []

    def test_shared_variable_forces_aggregation_failure(self):
        # Y is shared with s(Y); s does not unify with any head atom,
        # so the piece cannot be closed.
        assert (
            rewritings("q(X) :- r(X, Y), s(Y)", "a(X) -> r(X, Z)") == []
        )

    def test_shared_variable_aggregates_across_head_atoms(self):
        # Both query atoms must be rewritten together (the invented Z
        # joins them); the multi-atom head supports the whole piece.
        results = rewritings(
            "q(X) :- r(X, Y), s(Y)", "a(X) -> r(X, Z), s(Z)"
        )
        assert len(results) == 1
        assert [a.relation for a in results[0].body] == ["a"]

    def test_partial_aggregation_keeps_rest(self):
        results = rewritings(
            "q(X) :- r(X, Y), s(Y), other(X)", "a(X) -> r(X, Z), s(Z)"
        )
        assert len(results) == 1
        assert {a.relation for a in results[0].body} == {"a", "other"}

    def test_repeated_existential_head_variable(self):
        # Head r(Z, Z): query r(U, V) unifies by merging U and V.
        results = rewritings("q() :- r(U, V)", "a(X) -> r(Z, Z)")
        assert len(results) == 1
        assert results[0].body[0].relation == "a"

    def test_two_distinct_existentials_cannot_merge(self):
        # Head r(Z1, Z2) cannot rewrite r(U, U): Z1 and Z2 are
        # distinct nulls.
        assert rewritings("q() :- r(U, U)", "a(X) -> r(Z1, Z2)") == []

    def test_existential_cannot_meet_frontier(self):
        # Head r(X, Z) with frontier X: query atom r(U, U) would force
        # X = Z.
        assert rewritings("q() :- r(U, U)", "a(X) -> r(X, Z)") == []


class TestConstantsAndAnswers:
    def test_head_constant_matches_query_constant(self):
        results = rewritings('q(X) :- r(X, "v")', 'a(X) -> r(X, "v")')
        assert len(results) == 1

    def test_head_constant_clash(self):
        assert rewritings('q(X) :- r(X, "v")', 'a(X) -> r(X, "w")') == []

    def test_answer_variable_bound_to_constant(self):
        results = rewritings("q(X) :- r(X)", 'a(Y) -> r("k")')
        assert len(results) == 1
        assert results[0].answer_terms == (Constant("k"),)

    def test_two_answer_variables_merged_by_repeated_head(self):
        results = rewritings("q(X, Y) :- r(X, Y)", "a(U) -> r(U, U)")
        assert len(results) == 1
        answers = results[0].answer_terms
        assert answers[0] == answers[1]
        assert isinstance(answers[0], Variable)


class TestPieceMetadata:
    def test_piece_indexes_reported(self):
        query = parse_query("q(X) :- other(X), b(X)")
        rule = parse_tgd("a(X) -> b(X)")
        steps = list(piece_rewritings(query, rule))
        assert len(steps) == 1
        assert steps[0].piece == frozenset({1})

    def test_rule_standardized_apart(self):
        # The rule reuses the query's variable names; the step must not
        # capture them.
        results = rewritings("q(X) :- b(X, Y)", "a(Y, X) -> b(Y, X)")
        assert len(results) == 1
        body_atom = results[0].body[0]
        assert body_atom.relation == "a"
        # answers preserved
        assert results[0].answer_terms == (Variable("X"),)


class TestFactorizations:
    def test_unifiable_atoms_merge(self):
        query = parse_query("q() :- r(X, Y), r(Y, Z)")
        factored = list(factorizations(query))
        assert len(factored) == 1
        assert len(factored[0].body) == 1

    def test_constant_clash_blocks_factorization(self):
        query = parse_query('q() :- r("a", X), r("b", Y)')
        assert list(factorizations(query)) == []

    def test_identical_shape_atoms(self):
        query = parse_query("q(X) :- r(X, Y), r(X, Z)")
        factored = list(factorizations(query))
        assert len(factored) == 1
        assert len(factored[0].body) == 1

    def test_different_relations_not_factorized(self):
        query = parse_query("q() :- r(X), s(X)")
        assert list(factorizations(query)) == []

    def test_answer_variables_survive_factorization(self):
        query = parse_query("q(X, Y) :- r(X, Z), r(Y, Z)")
        factored = list(factorizations(query))
        assert len(factored) == 1
        merged = factored[0]
        assert merged.answer_terms[0] == merged.answer_terms[1]
