"""Tests for rewriting provenance (RewritingResult.derivation_of)."""

import pytest

from repro.lang.parser import parse_program, parse_query
from repro.rewriting.rewriter import rewrite


class TestDerivations:
    def test_input_disjunct_has_empty_derivation(self, hierarchy_rules):
        result = rewrite(parse_query("q(X) :- d(X)"), hierarchy_rules)
        original = next(
            cq for cq in result.ucq if cq.body[0].relation == "d"
        )
        assert result.derivation_of(original) == ()

    def test_chain_derivation_lists_rules_in_order(self, hierarchy_rules):
        # hierarchy: r1: a->b, r2: b->c, r3: c->d.  The disjunct on `a`
        # is reached by applying r3, then r2, then r1.
        result = rewrite(parse_query("q(X) :- d(X)"), hierarchy_rules)
        deepest = next(
            cq for cq in result.ucq if cq.body[0].relation == "a"
        )
        assert result.derivation_of(deepest) == (
            "apply r3",
            "apply r2",
            "apply r1",
        )

    def test_every_final_disjunct_has_a_derivation(self):
        from repro.workloads.paper import EXAMPLE1_QUERY, example1

        result = rewrite(EXAMPLE1_QUERY, example1())
        for cq in result.ucq:
            steps = result.derivation_of(cq)
            assert all(step.startswith("apply ") for step in steps)

    def test_unknown_query_raises(self, hierarchy_rules):
        result = rewrite(parse_query("q(X) :- d(X)"), hierarchy_rules)
        with pytest.raises(KeyError):
            result.derivation_of(parse_query("q(X) :- unrelated(X)"))

    def test_factorization_steps_named(self):
        rules = parse_program("a(X) -> r(X, Z).")
        result = rewrite(parse_query("q() :- r(X, Y), r(X2, Y)"), rules)
        derivations = {
            result.derivation_of(cq) for cq in result.ucq
        }
        flat = {step for chain in derivations for step in chain}
        # The merged path goes through either a factorize step or an
        # aggregated piece application; both must be labeled.
        assert all(
            step == "factorize" or step.startswith("apply ")
            for step in flat
        )
