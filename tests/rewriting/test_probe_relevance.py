"""Tests for repro.rewriting.probe and repro.rewriting.relevance."""

from repro.lang.parser import parse_program, parse_query
from repro.rewriting.engine import FORewritingEngine
from repro.rewriting.probe import ProbeVerdict, probe_query_rewritability
from repro.rewriting.relevance import relevant_rules
from repro.workloads.ontologies import university_ontology
from repro.workloads.paper import EXAMPLE2_QUERY, example1, example2


class TestProbe:
    def test_terminating_query_detected(self):
        report = probe_query_rewritability(
            parse_query("q(X) :- r(X, Y)"), example1()
        )
        assert report.verdict is ProbeVerdict.TERMINATES
        assert report.result.complete

    def test_unbounded_chain_detected(self):
        report = probe_query_rewritability(
            EXAMPLE2_QUERY, example2(), max_depth=10
        )
        assert report.verdict is ProbeVerdict.DIVERGING
        assert not report.result.complete
        assert report.widths[-1] > report.widths[0]

    def test_per_query_rewritability_over_bad_set(self):
        # Example 2 is not WR, but the query on t alone never touches
        # the dangerous chain... t is only produced by no rule, so its
        # rewriting is itself: per-query FO-rewritable.
        report = probe_query_rewritability(
            parse_query("q(X, Y) :- t(X, Y)"), example2()
        )
        assert report.verdict is ProbeVerdict.TERMINATES
        assert report.result.size == 1

    def test_widths_aligned_with_depths(self):
        report = probe_query_rewritability(
            EXAMPLE2_QUERY, example2(), max_depth=6
        )
        assert len(report.widths) == len(report.depths)

    def test_terminates_verdict_returns_full_rewriting(self):
        report = probe_query_rewritability(
            parse_query("q(X) :- employee(X)"), university_ontology()
        )
        assert report.verdict is ProbeVerdict.TERMINATES
        assert report.result.size >= 5


class TestRelevance:
    def test_unreachable_module_dropped(self):
        rules = parse_program(
            """
            a(X) -> b(X).
            b(X) -> c(X).
            zebra(X) -> stripes(X).
            """
        )
        report = relevant_rules(parse_query("q(X) :- c(X)"), rules)
        assert len(report.relevant) == 2
        assert [r.head[0].relation for r in report.dropped] == ["stripes"]

    def test_transitive_reachability(self):
        rules = parse_program(
            """
            base(X) -> mid(X).
            mid(X) -> top(X).
            """
        )
        report = relevant_rules(parse_query("q(X) :- top(X)"), rules)
        assert len(report.relevant) == 2
        assert "base" in report.reachable_relations

    def test_body_relations_open_new_rules(self):
        rules = parse_program(
            """
            helper(X) -> target(X).
            source(X) -> helper(X).
            unrelated(X) -> other(X).
            """
        )
        report = relevant_rules(parse_query("q(X) :- target(X)"), rules)
        relations = {r.head[0].relation for r in report.relevant}
        assert relations == {"target", "helper"}

    def test_multi_head_rule_relevant_via_any_atom(self):
        rules = parse_program("a(X) -> b(X), c(X).")
        report = relevant_rules(parse_query("q(X) :- c(X)"), rules)
        assert len(report.relevant) == 1

    def test_filtering_preserves_rewriting(self):
        rules = list(university_ontology()) + list(
            parse_program("zebra(X) -> stripes(X). stripes(X) -> striped(X).")
        )
        query = parse_query("q(X) :- employee(X)")
        filtered_engine = FORewritingEngine(rules, filter_relevant=True)
        unfiltered_engine = FORewritingEngine(rules, filter_relevant=False)
        assert (
            filtered_engine.rewrite(query).ucq
            == unfiltered_engine.rewrite(query).ucq
        )

    def test_all_relevant_when_everything_reachable(self, hierarchy_rules):
        report = relevant_rules(parse_query("q(X) :- d(X)"), hierarchy_rules)
        assert report.relevant == tuple(hierarchy_rules)
        assert report.dropped == ()
