"""Tests for the rewriter/P-node ablation switches (used by benches)."""

from repro.chase.certain import certain_answers
from repro.data.database import Database
from repro.data.evaluation import evaluate_ucq
from repro.graphs.pnode_graph import build_pnode_graph
from repro.lang.parser import parse_database, parse_program, parse_query
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.rewriter import rewrite
from repro.workloads.generators import context_blocked_family
from repro.workloads.paper import EXAMPLE1_QUERY, example1


class TestRedundancyEliminationAblation:
    def test_bare_mode_diverges_on_example1(self):
        result = rewrite(
            EXAMPLE1_QUERY,
            example1(),
            RewritingBudget(max_depth=10, max_cqs=3_000),
            prune_subsumed=False,
            minimize=False,
        )
        assert not result.complete

    def test_bare_mode_still_sound(self):
        rules = parse_program("a(X) -> b(X). b(X) -> c(X).")
        database = Database(parse_database("a(v)."))
        query = parse_query("q(X) :- c(X)")
        result = rewrite(
            query,
            rules,
            RewritingBudget(max_depth=5),
            prune_subsumed=False,
            minimize=False,
        )
        assert evaluate_ucq(result.ucq, database) == certain_answers(
            query, rules, database
        )

    def test_minimize_alone_suffices_on_example1(self):
        result = rewrite(
            EXAMPLE1_QUERY,
            example1(),
            RewritingBudget(max_depth=10, max_cqs=3_000),
            prune_subsumed=False,
        )
        assert result.complete


class TestFactorizationAblation:
    def test_forced_aggregation_covers_repeated_existential(self):
        rules = parse_program("a(X) -> r(Z, Z).")
        query = parse_query("q() :- r(U, V), r(V, U)")
        database = Database(parse_database("a(c)."))
        result = rewrite(query, rules, factorize=False)
        assert result.complete
        assert evaluate_ucq(result.ucq, database) == {()}


class TestContextCheckAblation:
    def test_family_is_wr_with_check(self):
        graph = build_pnode_graph(context_blocked_family())
        assert graph.dangerous_cycle() is None

    def test_family_wrongly_rejected_without_check(self):
        graph = build_pnode_graph(
            context_blocked_family(), context_check=False
        )
        assert graph.dangerous_cycle() is not None

    def test_family_really_is_fo_rewritable(self):
        rules = context_blocked_family()
        for text in (
            "q(X, Y, Z) :- r(X, Y, Z)",
            "q(X, Y) :- t(X, Y)",
            "q() :- r(X, Y, Z), u(Z)",
        ):
            assert rewrite(parse_query(text), rules).complete
