"""The subsumption kernel: filters are sound, fast paths are drop-in.

Three layers of guarantees:

* every necessary-condition filter (signature, size, fingerprint) is
  *sound* -- it never rejects a pair that actually subsumes -- checked
  both on hand-built adversarial pairs (the ones that famously break
  naive "optimizations", e.g. non-injective homomorphisms collapsing
  same-relation atoms) and on hypothesis-constructed true pairs;
* the optimized paths (kernel check, bucketed batch, thread/process
  parallel, incremental frontier) return *exactly* what the naive
  reference implementations return, including output order;
* the public ``is_subsumed`` helper runs through the shared kernel, so
  loops over a fixed subsumee reuse its cached canonical database
  (the re-freezing bugfix).
"""

from __future__ import annotations

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lang.atoms import Atom
from repro.lang.parser import parse_query
from repro.lang.queries import ConjunctiveQuery
from repro.lang.substitution import Substitution
from repro.lang.terms import Constant, Variable
from repro.rewriting.minimize import is_subsumed, remove_subsumed
from repro.rewriting.subsume import (
    SubsumptionFrontier,
    SubsumptionKernel,
    fingerprint_rejects,
    filters_reject,
    kernel_remove_subsumed,
    naive_is_subsumed,
    naive_remove_subsumed,
    parallel_remove_subsumed,
    shared_kernel_info,
    signature_rejects,
    size_rejects,
)

# --------------------------------------------------------------------- #
# Strategies                                                             #
# --------------------------------------------------------------------- #

RELATIONS = (("a", 1), ("b", 1), ("r", 2), ("s", 2), ("t", 3))
VARS = [Variable(f"V{i}") for i in range(4)]
CONSTANTS = [Constant("c1"), Constant("c2")]


@st.composite
def cqs(draw, max_atoms: int = 3):
    """A small random CQ whose answer variables occur in the body."""
    body = []
    for _ in range(draw(st.integers(1, max_atoms))):
        relation, arity = draw(st.sampled_from(RELATIONS))
        terms = [
            draw(st.sampled_from(VARS + CONSTANTS)) for _ in range(arity)
        ]
        body.append(Atom(relation, terms))
    body_vars = sorted(
        {v for atom in body for v in atom.variables()},
        key=lambda v: v.name,
    )
    answer_count = draw(st.integers(0, min(2, len(body_vars))))
    return ConjunctiveQuery(body_vars[:answer_count], body)


@st.composite
def true_subsumption_pairs(draw):
    """A pair ``(subsumee, subsumer)`` with ``subsumee ⊑ subsumer``
    guaranteed by construction.

    The subsumee is built from the subsumer by substituting non-answer
    variables (with variables or constants) and appending extra atoms;
    the identity on answer variables makes the substitution itself the
    qualifying homomorphism.
    """
    subsumer = draw(cqs())
    answer_vars = set(subsumer.answer_variables)
    mapping = {}
    for var in subsumer.body_variables():
        if var in answer_vars:
            continue
        if draw(st.booleans()):
            mapping[var] = draw(st.sampled_from(VARS + CONSTANTS))
    specialized = subsumer.apply(Substitution(mapping))
    extra = []
    for _ in range(draw(st.integers(0, 2))):
        relation, arity = draw(st.sampled_from(RELATIONS))
        terms = [
            draw(st.sampled_from(VARS + CONSTANTS)) for _ in range(arity)
        ]
        extra.append(Atom(relation, terms))
    subsumee = ConjunctiveQuery(
        specialized.answer_terms, list(specialized.body) + extra
    )
    return subsumee, subsumer


def pool(seed: int, size: int) -> list[ConjunctiveQuery]:
    """A deterministic pool of small CQs with plenty of subsumptions."""
    rng = random.Random(seed)
    out = []
    for _ in range(size):
        n = rng.randint(1, 4)
        atoms = []
        for _ in range(n):
            relation, arity = rng.choice(RELATIONS)
            atoms.append(
                Atom(
                    relation,
                    [rng.choice(VARS + CONSTANTS) for _ in range(arity)],
                )
            )
        body_vars = sorted(
            {v for atom in atoms for v in atom.variables()},
            key=lambda v: v.name,
        )
        answers = body_vars[: rng.randint(0, min(1, len(body_vars)))]
        out.append(ConjunctiveQuery(answers, atoms))
    return out


def profiles(kernel: SubsumptionKernel, *queries):
    return [kernel.profile(query) for query in queries]


# --------------------------------------------------------------------- #
# Filter soundness                                                       #
# --------------------------------------------------------------------- #


@settings(max_examples=150, deadline=None)
@given(true_subsumption_pairs())
def test_filters_never_reject_true_pairs(pair):
    subsumee, subsumer = pair
    assert naive_is_subsumed(subsumee, subsumer)  # construction worked
    kernel = SubsumptionKernel()
    ee, er = profiles(kernel, subsumee, subsumer)
    assert not signature_rejects(ee, er)
    assert not size_rejects(ee, er)
    assert not fingerprint_rejects(ee, er)
    assert not filters_reject(ee, er)
    assert kernel.is_subsumed(subsumee, subsumer)


def test_filters_survive_atom_collapse():
    """The classic trap: a *larger* body can subsume a smaller one via a
    non-injective homomorphism, so neither body size nor the relation
    multiset may be used for rejection."""
    small = parse_query("q() :- r(X, X).")
    large = parse_query("q() :- r(X, Y), r(Y, Z).")
    assert naive_is_subsumed(small, large)
    kernel = SubsumptionKernel()
    ee, er = profiles(kernel, small, large)
    assert not filters_reject(ee, er)
    assert kernel.is_subsumed(small, large)


def test_filters_survive_constant_repetition():
    subsumee = parse_query("q(X) :- r(X, c1), s(c1, X).")
    subsumer = parse_query("q(X) :- r(X, c1).")
    assert naive_is_subsumed(subsumee, subsumer)
    kernel = SubsumptionKernel()
    ee, er = profiles(kernel, subsumee, subsumer)
    assert not filters_reject(ee, er)


def test_filters_reject_obvious_non_pairs():
    kernel = SubsumptionKernel()
    ee, er = profiles(
        kernel,
        parse_query("q(X) :- a(X)."),
        parse_query("q(X) :- b(X)."),
    )
    assert signature_rejects(ee, er)
    arity_ee, arity_er = profiles(
        kernel,
        parse_query("q(X) :- r(X, Y)."),
        parse_query("q(X, Y) :- r(X, Y)."),
    )
    assert size_rejects(arity_ee, arity_er)
    const_ee, const_er = profiles(
        kernel,
        parse_query("q(X) :- r(X, c1)."),
        parse_query("q(X) :- r(X, c2)."),
    )
    assert fingerprint_rejects(const_ee, const_er)


@settings(max_examples=150, deadline=None)
@given(cqs(), cqs())
def test_kernel_check_matches_naive(first, second):
    kernel = SubsumptionKernel()
    assert kernel.is_subsumed(first, second) == naive_is_subsumed(
        first, second
    )
    assert kernel.is_subsumed(second, first) == naive_is_subsumed(
        second, first
    )


# --------------------------------------------------------------------- #
# Batch minimization: exact drop-in equivalence + determinism            #
# --------------------------------------------------------------------- #


@settings(max_examples=40, deadline=None)
@given(st.lists(cqs(), min_size=0, max_size=10))
def test_bucketed_batch_matches_naive(queries):
    assert kernel_remove_subsumed(queries) == naive_remove_subsumed(queries)


def test_batch_matches_naive_on_dense_pools():
    for seed in range(6):
        queries = pool(seed, 40)
        expected = naive_remove_subsumed(queries)
        assert kernel_remove_subsumed(queries) == expected
        assert remove_subsumed(queries) == expected


def test_output_order_is_deterministic_under_bucketing():
    """Survivors come out in input order, independent of how the bucket
    index groups them -- re-running and re-ordering agree with naive."""
    queries = pool(99, 30)
    first = remove_subsumed(queries)
    assert remove_subsumed(queries) == first  # stable across runs
    shuffled = list(queries)
    random.Random(5).shuffle(shuffled)
    assert remove_subsumed(shuffled) == naive_remove_subsumed(shuffled)


def test_equivalent_queries_keep_smallest_then_earliest():
    general = parse_query("q(X) :- r(X, Y).")
    padded = parse_query("q(X) :- r(X, Y), r(X, Z).")
    specific = parse_query("q(X) :- r(X, c1).")
    assert remove_subsumed([padded, general, specific]) == (general,)
    # Among equal-size equivalents the earlier one survives.
    twin = parse_query("q(A) :- r(A, B).")
    assert remove_subsumed([general, twin]) == (general,)
    assert remove_subsumed([twin, general]) == (twin,)


# --------------------------------------------------------------------- #
# Parallel paths                                                         #
# --------------------------------------------------------------------- #


def test_thread_parallel_matches_sequential():
    queries = pool(3, 48)
    expected = naive_remove_subsumed(queries)
    assert parallel_remove_subsumed(queries, max_workers=4) == expected
    assert remove_subsumed(queries, max_workers=3) == expected
    assert remove_subsumed(queries, max_workers=0) == expected  # auto


def test_process_parallel_matches_sequential():
    queries = pool(4, 12)
    assert parallel_remove_subsumed(
        queries, max_workers=2, mode="process"
    ) == naive_remove_subsumed(queries)


def test_parallel_rejects_unknown_mode():
    import pytest

    from repro.lang.errors import ReproError

    with pytest.raises(ReproError):
        parallel_remove_subsumed(pool(0, 4), max_workers=2, mode="gpu")


# --------------------------------------------------------------------- #
# Incremental frontier                                                   #
# --------------------------------------------------------------------- #


def test_frontier_covers_add_matches_streaming_discipline():
    """covers()/add() over a stream reproduces the rewriter's old
    one-directional pruning, and the final minimal sets agree."""
    queries = pool(11, 40)
    kept = []
    frontier = SubsumptionFrontier()
    for query in queries:
        covered_old = any(naive_is_subsumed(query, other) for other in kept)
        assert frontier.covers(query) == covered_old
        if not covered_old:
            kept.append(query)
            frontier.add(query)
    assert naive_remove_subsumed(kept) == naive_remove_subsumed(
        frontier.queries()
    )


def test_frontier_admit_equals_batch_remove_subsumed():
    for seed in (21, 22, 23):
        queries = pool(seed, 40)
        frontier = SubsumptionFrontier()
        for query in queries:
            frontier.admit(query)
        assert tuple(frontier.queries()) == naive_remove_subsumed(queries)


def test_frontier_admit_prefers_smaller_equivalent():
    frontier = SubsumptionFrontier()
    padded = parse_query("q(X) :- r(X, Y), r(X, Z).")
    general = parse_query("q(X) :- r(X, Y).")
    assert frontier.admit(padded)
    assert frontier.admit(general)  # evicts the padded equivalent
    assert frontier.queries() == [general]
    assert not frontier.admit(padded)  # and stays evicted
    assert len(frontier) == 1


# --------------------------------------------------------------------- #
# The shared-kernel public helper (re-freezing bugfix)                   #
# --------------------------------------------------------------------- #


def test_public_is_subsumed_reuses_frozen_subsumee():
    subsumee = parse_query("q(X) :- r(X, Y), s(Y, Z), a(Z).")
    subsumers = [
        parse_query(f"q(X) :- r(X, V{i}).") for i in range(6)
    ]
    before = shared_kernel_info()
    for subsumer in subsumers:
        assert is_subsumed(subsumee, subsumer)
    after = shared_kernel_info()
    # One profile per distinct query; the fixed subsumee hits the cache
    # on every call after the first.
    assert after["cache_hits"] - before["cache_hits"] >= len(subsumers) - 1
    assert (
        after["cache_misses"] - before["cache_misses"]
        <= len(subsumers) + 1
    )


def test_public_is_subsumed_agrees_with_naive():
    queries = pool(31, 15)
    for first in queries:
        for second in queries:
            assert is_subsumed(first, second) == naive_is_subsumed(
                first, second
            )
