"""Tests for repro.rewriting.engine (FORewritingEngine)."""

import pytest

from repro.data.database import Database
from repro.data.sql import SQLiteBackend
from repro.lang.errors import RewritingBudgetExceeded
from repro.lang.parser import parse_database, parse_query
from repro.lang.signature import Signature
from repro.lang.terms import Constant
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.engine import FORewritingEngine
from repro.workloads.paper import EXAMPLE2_QUERY, example2


class TestAnswering:
    def test_answers_through_hierarchy(self, hierarchy_rules, small_database):
        engine = FORewritingEngine(hierarchy_rules)
        answers = engine.answer(parse_query("q(X) :- d(X)"), small_database)
        assert answers == {
            (Constant("one"),),
            (Constant("two"),),
            (Constant("three"),),
        }

    def test_rewriting_cache_reused(self, hierarchy_rules):
        engine = FORewritingEngine(hierarchy_rules)
        first = engine.rewrite(parse_query("q(X) :- d(X)"))
        second = engine.rewrite(parse_query("q(Y) :- d(Y)"))
        assert first is second  # same canonical UCQ -> cached object

    def test_incomplete_rewriting_raises_by_default(self):
        engine = FORewritingEngine(
            example2(), budget=RewritingBudget(max_depth=3)
        )
        with pytest.raises(RewritingBudgetExceeded):
            engine.answer(EXAMPLE2_QUERY, Database())

    def test_incomplete_rewriting_allowed_when_requested(self):
        engine = FORewritingEngine(
            example2(), budget=RewritingBudget(max_depth=3)
        )
        database = Database(parse_database("r(a, b)."))
        answers = engine.answer(
            EXAMPLE2_QUERY, database, require_complete=False
        )
        assert answers == {()}

    def test_sql_answers_match_memory(self, hierarchy_rules, small_database):
        engine = FORewritingEngine(hierarchy_rules)
        query = parse_query("q(X) :- d(X)")
        signature = Signature(dict(small_database.signature))
        for rule in hierarchy_rules:
            signature.observe_tgd(rule)
        backend = SQLiteBackend(signature)
        backend.load(small_database.facts())
        try:
            assert engine.answer_sql(query, backend) == engine.answer(
                query, small_database
            )
        finally:
            backend.close()

    def test_sql_for_is_executable_text(self, hierarchy_rules):
        engine = FORewritingEngine(hierarchy_rules)
        sql = engine.sql_for(parse_query("q(X) :- d(X)"))
        assert sql.count("SELECT") == 4
        assert "UNION" in sql
