"""Tests for repro.rewriting.approx (sound approximation, Section 7)."""

from repro.data.database import Database
from repro.chase.certain import certain_answers
from repro.lang.parser import parse_database, parse_query
from repro.rewriting.approx import approximate_answers
from repro.workloads.paper import EXAMPLE2_QUERY, example2


def db(text):
    return Database(parse_database(text))


class TestApproximation:
    def test_exact_on_fo_rewritable_input(self, hierarchy_rules):
        report = approximate_answers(
            parse_query("q(X) :- d(X)"),
            hierarchy_rules,
            db("a(v)."),
            max_depth=10,
        )
        assert report.exact
        assert len(report.answers) == 1

    def test_sound_on_divergent_input(self):
        database = db("t(a, a). s(c, c, a).")
        report = approximate_answers(
            EXAMPLE2_QUERY, example2(), database, max_depth=6
        )
        assert not report.exact
        # Soundness: every approximate answer is a certain answer
        # (the chase terminates on this instance).
        truth = certain_answers(EXAMPLE2_QUERY, example2(), database)
        assert report.answers <= truth

    def test_answer_counts_monotone_in_depth(self):
        database = db("t(a, a). t(b, a). s(c, c, a). r(a, d).")
        report = approximate_answers(
            EXAMPLE2_QUERY, example2(), database, max_depth=6
        )
        counts = list(report.answer_counts)
        assert counts == sorted(counts)

    def test_per_depth_series_aligned(self):
        database = db("t(a, a).")
        report = approximate_answers(
            EXAMPLE2_QUERY, example2(), database, max_depth=4
        )
        assert len(report.depths) == len(report.answer_counts)
        assert len(report.depths) == len(report.ucq_sizes)

    def test_converged_at_reported(self, hierarchy_rules):
        report = approximate_answers(
            parse_query("q(X) :- b(X)"),
            hierarchy_rules,
            db("a(v)."),
            max_depth=10,
        )
        assert report.converged_at is not None

    def test_stops_early_when_complete(self, hierarchy_rules):
        report = approximate_answers(
            parse_query("q(X) :- d(X)"),
            hierarchy_rules,
            db("a(v)."),
            max_depth=50,
        )
        # The hierarchy saturates at depth 3; no 50 rounds needed.
        assert report.depths[-1] <= 5
