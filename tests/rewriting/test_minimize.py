"""Tests for repro.rewriting.minimize (subsumption and cores)."""

from repro.lang.atoms import Atom
from repro.lang.parser import parse_query
from repro.lang.queries import ConjunctiveQuery
from repro.lang.terms import Constant, Variable
from repro.rewriting.minimize import (
    equivalent,
    is_subsumed,
    minimize_cq,
    remove_subsumed,
)

X, Y = Variable("X"), Variable("Y")


class TestSubsumption:
    def test_specialisation_is_subsumed(self):
        general = parse_query("q(X) :- r(X, Y)")
        specific = parse_query("q(X) :- r(X, X)")
        assert is_subsumed(specific, general)
        assert not is_subsumed(general, specific)

    def test_longer_body_subsumed_by_shorter(self):
        long = parse_query("q(X) :- r(X, Y), s(Y)")
        short = parse_query("q(X) :- r(X, Y)")
        assert is_subsumed(long, short)
        assert not is_subsumed(short, long)

    def test_constant_vs_variable(self):
        grounded = parse_query('q(X) :- r(X, "a")')
        general = parse_query("q(X) :- r(X, Y)")
        assert is_subsumed(grounded, general)
        assert not is_subsumed(general, grounded)

    def test_answer_tuple_must_correspond(self):
        first = parse_query("q(X) :- r(X, Y)")
        second = parse_query("q(Y) :- r(X, Y)")
        assert not is_subsumed(first, second)
        assert not is_subsumed(second, first)

    def test_different_arity_incomparable(self):
        unary = parse_query("q(X) :- r(X, Y)")
        binary = parse_query("q(X, Y) :- r(X, Y)")
        assert not is_subsumed(unary, binary)

    def test_renaming_equivalence(self):
        first = parse_query("q(X) :- r(X, Y), s(Y)")
        second = parse_query("q(X) :- r(X, Z), s(Z)")
        assert equivalent(first, second)

    def test_redundant_atom_equivalence(self):
        redundant = parse_query("q(X) :- r(X, Y), r(X, Z)")
        minimal = parse_query("q(X) :- r(X, Y)")
        assert equivalent(redundant, minimal)

    def test_boolean_queries(self):
        first = parse_query("q() :- r(X, Y)")
        second = parse_query("q() :- r(X, X)")
        assert is_subsumed(second, first)
        assert not is_subsumed(first, second)

    def test_frozen_constants_do_not_clash_with_real(self):
        # A body constant named like a variable must not be confused
        # with a frozen variable of the other query.
        q1 = parse_query('q() :- r("X")')
        q2 = parse_query("q() :- r(X)")
        assert is_subsumed(q1, q2)
        assert not is_subsumed(q2, q1)

    def test_repeated_answer_terms(self):
        merged = ConjunctiveQuery([X, X], [Atom("r", [X])])
        free = parse_query("q(X, Y) :- r(X), r(Y)")
        assert is_subsumed(merged, free)
        assert not is_subsumed(free, merged)


class TestRemoveSubsumed:
    def test_specialisations_removed(self):
        general = parse_query("q(X) :- r(X, Y)")
        specific = parse_query("q(X) :- r(X, X)")
        longer = parse_query("q(X) :- r(X, Y), s(Y)")
        kept = remove_subsumed([specific, general, longer])
        assert kept == (general,)

    def test_incomparable_all_kept(self):
        a = parse_query("q(X) :- r(X, Y)")
        b = parse_query("q(X) :- s(X)")
        assert set(remove_subsumed([a, b])) == {a, b}

    def test_equivalent_duplicates_collapse(self):
        a = parse_query("q(X) :- r(X, Y)")
        b = parse_query("q(X) :- r(X, Z)")
        assert len(remove_subsumed([a, b])) == 1

    def test_empty_input(self):
        assert remove_subsumed([]) == ()


class TestMinimizeCQ:
    def test_redundant_atom_dropped(self):
        query = parse_query("q(X) :- r(X, Y), r(X, Z)")
        assert len(minimize_cq(query).body) == 1

    def test_core_keeps_answer_variables(self):
        query = parse_query("q(X, Y) :- r(X, Z), r(Y, Z)")
        minimized = minimize_cq(query)
        assert set(minimized.answer_variables) == {X, Y}
        assert len(minimized.body) == 2  # nothing redundant here

    def test_non_redundant_join_untouched(self):
        query = parse_query("q(X) :- r(X, Y), s(Y)")
        assert minimize_cq(query) == query

    def test_duplicate_atoms_dropped(self):
        query = ConjunctiveQuery([X], [Atom("r", [X]), Atom("r", [X])])
        assert len(minimize_cq(query).body) == 1

    def test_constant_specialisation_not_dropped(self):
        query = parse_query('q(X) :- r(X, Y), r(X, "a")')
        # r(X, "a") is NOT redundant (it constrains), r(X, Y) IS.
        minimized = minimize_cq(query)
        assert minimized.body == (
            Atom("r", [X, Constant("a")]),
        )

    def test_minimized_query_is_equivalent(self):
        query = parse_query("q(X) :- r(X, Y), r(X, Z), s(X)")
        assert equivalent(minimize_cq(query), query)
