"""Tests for repro.rewriting.store (persisted rewritings)."""

import pytest

from repro.data.database import Database
from repro.data.evaluation import evaluate_ucq
from repro.lang.errors import ReproError
from repro.lang.parser import parse_database, parse_query
from repro.rewriting.rewriter import rewrite
from repro.rewriting.store import RewritingStore, precompile_workload
from repro.workloads.ontologies import university_ontology, university_queries


class TestStoreBasics:
    def test_put_get_by_canonical_form(self, hierarchy_rules):
        store = RewritingStore()
        query = parse_query("q(X) :- d(X)")
        result = rewrite(query, hierarchy_rules)
        store.put(query, result.ucq)
        # Lookup with a renamed variant of the same query.
        renamed = parse_query("q(U) :- d(U)")
        entry = store.get(renamed)
        assert entry is not None
        assert entry.rewriting == result.ucq

    def test_missing_query_returns_none(self):
        store = RewritingStore()
        assert store.get(parse_query("q(X) :- r(X)")) is None

    def test_put_replaces(self, hierarchy_rules):
        store = RewritingStore()
        query = parse_query("q(X) :- d(X)")
        result = rewrite(query, hierarchy_rules)
        store.put(query, result.ucq, complete=False)
        store.put(query, result.ucq, complete=True)
        assert len(store) == 1
        assert store.get(query).complete


class TestPersistence:
    def test_roundtrip(self, tmp_path, hierarchy_rules):
        queries = [parse_query("q(X) :- d(X)"), parse_query("p(X) :- c(X)")]
        store = precompile_workload(queries, hierarchy_rules)
        path = store.save(tmp_path / "workload.rw")
        loaded = RewritingStore.load(path)
        assert len(loaded) == 2
        for query in queries:
            original = store.get(query)
            restored = loaded.get(query)
            assert restored is not None
            assert restored.rewriting == original.rewriting
            assert restored.complete == original.complete

    def test_loaded_rewriting_answers_correctly(
        self, tmp_path, hierarchy_rules
    ):
        query = parse_query("q(X) :- d(X)")
        store = precompile_workload([query], hierarchy_rules)
        path = store.save(tmp_path / "one.rw")
        loaded = RewritingStore.load(path)
        database = Database(parse_database("a(v). c(w)."))
        answers = evaluate_ucq(loaded.get(query).rewriting, database)
        expected = evaluate_ucq(
            rewrite(query, hierarchy_rules).ucq, database
        )
        assert answers == expected

    def test_incomplete_flag_persisted(self, tmp_path):
        from repro.rewriting.budget import RewritingBudget
        from repro.workloads.paper import EXAMPLE2_QUERY, example2

        store = precompile_workload(
            [EXAMPLE2_QUERY], example2(), RewritingBudget(max_depth=3)
        )
        loaded = RewritingStore.load(store.save(tmp_path / "partial.rw"))
        assert not loaded.get(EXAMPLE2_QUERY).complete

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "junk.rw"
        path.write_text("not a store\n")
        with pytest.raises(ReproError):
            RewritingStore.load(path)

    def test_university_workload_roundtrip(self, tmp_path):
        rules = university_ontology()
        queries = [query for _, query in university_queries()]
        store = precompile_workload(queries, rules)
        loaded = RewritingStore.load(store.save(tmp_path / "uni.rw"))
        assert len(loaded) == len(queries)
