"""Tests for repro.rewriting.datalog_target (nonrecursive-Datalog target)."""

import itertools

from repro.data.database import Database
from repro.data.evaluation import evaluate_ucq
from repro.lang.atoms import Atom
from repro.lang.parser import parse_program, parse_query
from repro.lang.terms import Constant
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.datalog_target import rewrite_datalog
from repro.rewriting.rewriter import rewrite

HIERARCHY = parse_program(
    """
    R1: a1(X) -> c1(X).
    R2: a2(X) -> c1(X).
    R3: b1(X) -> c2(X).
    R4: b2(X) -> c2(X).
    """
)


def hierarchy_db() -> Database:
    c = Constant
    return Database(
        [
            Atom("a1", (c("u"),)),
            Atom("b2", (c("u"),)),
            Atom("a2", (c("v"),)),
            Atom("b1", (c("w"),)),
            Atom("c1", (c("d"),)),
            Atom("c2", (c("d"),)),
        ]
    )


class TestFactorization:
    def test_shared_aux_predicates_and_polynomial_size(self):
        query = parse_query("q(X) :- c1(X), c2(X)")
        ucq = rewrite(query, HIERARCHY)
        datalog = rewrite_datalog(query, HIERARCHY)
        # UCQ distributes the 3 choices per atom: 3 * 3 = 9 disjuncts;
        # the program pays per atom: 2 aux * 3 rules + 1 goal rule.
        assert ucq.size == 9
        assert datalog.size == 7
        assert len(datalog.predicates) == 2
        assert datalog.fallback_disjuncts == 0
        assert datalog.complete

    def test_answers_match_ucq_rewriting(self):
        query = parse_query("q(X) :- c1(X), c2(X)")
        database = hierarchy_db()
        via_ucq = evaluate_ucq(rewrite(query, HIERARCHY).ucq, database)
        via_datalog = rewrite_datalog(query, HIERARCHY).answer(database)
        assert via_datalog == via_ucq
        assert via_datalog == frozenset(
            {(Constant("u"),), (Constant("d"),)}
        )

    def test_pattern_shared_across_disjuncts(self):
        # Both disjuncts mention c1(X): one pattern, one aux predicate.
        query_a = parse_query("q(X) :- c1(X)")
        query_b = parse_query("q(X) :- c1(X), c2(X)")
        from repro.lang.queries import UnionOfConjunctiveQueries

        ucq = UnionOfConjunctiveQueries([query_a, query_b])
        datalog = rewrite_datalog(ucq, HIERARCHY)
        assert len(datalog.predicates) == 2
        assert len(datalog.goal_rules) == 2

    def test_boolean_query(self):
        query = parse_query("q() :- c1(X)")
        datalog = rewrite_datalog(query, HIERARCHY)
        assert datalog.arity == 0
        assert datalog.answer(hierarchy_db()) == frozenset({()})
        assert datalog.answer(Database([])) == frozenset()

    def test_constants_in_query(self):
        query = parse_query('q(X) :- c1(X), c2("d")')
        datalog = rewrite_datalog(query, HIERARCHY)
        database = hierarchy_db()
        via_ucq = evaluate_ucq(rewrite(query, HIERARCHY).ucq, database)
        assert datalog.answer(database) == via_ucq


class TestNLEFallback:
    RULES = parse_program(
        """
        R1: p(X) -> r(X, Y).
        R2: t(X) -> s(X).
        """
    )

    def test_join_existential_falls_back(self):
        # Y joins r and s: factorizing per atom would be unsound
        # (it loses the shared witness), so the disjunct takes the
        # full-UCQ fallback path.
        query = parse_query("q(X) :- r(X, Y), s(Y)")
        datalog = rewrite_datalog(query, self.RULES)
        assert datalog.fallback_disjuncts == 1
        database = Database(
            [
                Atom("p", (Constant("a"),)),
                Atom("r", (Constant("b"), Constant("c"))),
                Atom("t", (Constant("c"),)),
            ]
        )
        via_ucq = evaluate_ucq(rewrite(query, self.RULES).ucq, database)
        assert datalog.answer(database) == via_ucq

    def test_atom_local_existential_is_factorized(self):
        # Y occurs in one atom only: no NLE variable, no fallback.
        query = parse_query("q(X) :- r(X, Y), s(X)")
        datalog = rewrite_datalog(query, self.RULES)
        assert datalog.fallback_disjuncts == 0


class TestDeterminism:
    def test_rule_permutation_stable(self):
        query = parse_query("q(X) :- c1(X), c2(X)")
        reference = str(rewrite_datalog(query, HIERARCHY))
        for permuted in itertools.permutations(HIERARCHY):
            assert str(rewrite_datalog(query, permuted)) == reference

    def test_disjunct_permutation_stable(self):
        from repro.lang.queries import UnionOfConjunctiveQueries

        disjuncts = [
            parse_query("q(X) :- c1(X)"),
            parse_query("q(X) :- c2(X)"),
            parse_query("q(X) :- c1(X), c2(X)"),
        ]
        reference = str(
            rewrite_datalog(
                UnionOfConjunctiveQueries(disjuncts), HIERARCHY
            )
        )
        for permuted in itertools.permutations(disjuncts):
            program = str(
                rewrite_datalog(
                    UnionOfConjunctiveQueries(list(permuted)), HIERARCHY
                )
            )
            assert program == reference

    def test_alpha_renamed_query_stable(self):
        original = parse_query("q(X) :- c1(X), c2(X)")
        renamed = parse_query("q(Z) :- c2(Z), c1(Z)")
        assert str(rewrite_datalog(original, HIERARCHY)) == str(
            rewrite_datalog(renamed, HIERARCHY)
        )


class TestBudgetDegradation:
    DEEP = parse_program(
        """
        R1: d0(X) -> d1(X).
        R2: d1(X) -> d2(X).
        R3: d2(X) -> d3(X).
        R4: d3(X) -> d4(X).
        """
    )

    def test_truncated_subrewriting_is_sound_subset(self):
        query = parse_query("q(X) :- d4(X)")
        tight = RewritingBudget(max_depth=1, max_cqs=100_000)
        datalog = rewrite_datalog(query, self.DEEP, tight)
        assert not datalog.complete
        database = Database(
            [
                Atom("d0", (Constant("deep"),)),
                Atom("d3", (Constant("shallow"),)),
                Atom("d4", (Constant("direct"),)),
            ]
        )
        full = rewrite_datalog(query, self.DEEP).answer(database)
        partial = datalog.answer(database)
        assert partial <= full
        assert (Constant("direct"),) in partial
        assert (Constant("deep"),) not in partial


class TestProgramShape:
    def test_fresh_names_avoid_collisions(self):
        rules = parse_program("aux0(X) -> aux_ans(X). aux_ans(X) -> c1(X).")
        query = parse_query("q(X) :- c1(X)")
        datalog = rewrite_datalog(query, rules)
        taken = {"aux0", "aux_ans", "c1"}
        assert datalog.goal not in taken
        assert not set(datalog.predicates) & taken
        database = Database([Atom("aux0", (Constant("a"),))])
        via_ucq = evaluate_ucq(rewrite(query, rules).ucq, database)
        assert datalog.answer(database) == via_ucq

    def test_base_atoms_exclude_intermediates(self):
        query = parse_query("q(X) :- c1(X), c2(X)")
        datalog = rewrite_datalog(query, HIERARCHY)
        intermediates = set(datalog.predicates) | {datalog.goal}
        for atom in datalog.base_atoms():
            assert atom.relation not in intermediates
        assert {a.relation for a in datalog.base_atoms()} == {
            "a1",
            "a2",
            "b1",
            "b2",
            "c1",
            "c2",
        }

    def test_program_is_stratified_full_tgds(self):
        query = parse_query("q(X) :- c1(X), c2(X)")
        datalog = rewrite_datalog(query, HIERARCHY)
        program = datalog.program()  # raises if any rule is not full
        aux = set(datalog.predicates)
        for rule in datalog.aux_rules:
            assert all(a.relation not in aux for a in rule.body)
        for rule in datalog.goal_rules:
            assert rule.head[0].relation == datalog.goal
        assert program is not None

    def test_str_roundtrips_through_parser(self):
        query = parse_query("q(X) :- c1(X), c2(X)")
        datalog = rewrite_datalog(query, HIERARCHY)
        reparsed = parse_program(str(datalog))
        assert len(reparsed) == datalog.size
