"""Budget trips degrade soundly, and the degradation is observable.

When a :class:`RewritingBudget` (depth, CQ count or wall-clock) trips,
``require_complete=False`` must return a *sound subset* of the
unbudgeted answers -- on both the in-memory and the SQL path -- and the
partial/complete status must be visible in the trace spans.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.data.database import Database
from repro.data.sql import SQLiteBackend
from repro.lang.errors import RewritingBudgetExceeded
from repro.lang.parser import parse_database, parse_program, parse_query
from repro.lang.signature import Signature
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.engine import FORewritingEngine

RULES = parse_program(
    """
    r1: a(X) -> b(X).
    r2: b(X) -> c(X).
    r3: c(X) -> d(X).
    r4: d(X) -> e(X).
    """
)
QUERY = parse_query("q(X) :- e(X)")
DATABASE = Database(
    parse_database("a(one). b(two). c(three). d(four). e(five).")
)


def _backend() -> SQLiteBackend:
    signature = Signature()
    for rule in RULES:
        signature.observe_tgd(rule)
    backend = SQLiteBackend(signature)
    backend.load(DATABASE.facts())
    return backend


def _full_answers():
    return FORewritingEngine(RULES).answer(QUERY, DATABASE)


@pytest.mark.parametrize(
    "budget",
    [
        RewritingBudget(max_depth=1),
        RewritingBudget(max_depth=2),
        RewritingBudget(max_depth=None, max_cqs=2),
        RewritingBudget(max_seconds=1e-9),
    ],
    ids=["depth-1", "depth-2", "cq-count", "wall-clock"],
)
def test_budget_trip_yields_sound_subset_on_both_paths(budget):
    full = _full_answers()
    engine = FORewritingEngine(RULES, budget=budget)
    result = engine.rewrite(QUERY)
    assert not result.complete

    partial = engine.answer(QUERY, DATABASE, require_complete=False)
    assert partial < full  # strict: the truncation really lost answers

    with _backend() as backend:
        partial_sql = engine.answer_sql(
            QUERY, backend, require_complete=False
        )
    assert partial_sql < full
    assert partial_sql == partial


def test_unbudgeted_run_is_complete_baseline():
    # Every element reaches e via the r1..r4 chain.
    assert len(_full_answers()) == 5


def test_require_complete_raises_on_partial_rewriting():
    engine = FORewritingEngine(
        RULES, budget=RewritingBudget(max_depth=1)
    )
    with pytest.raises(RewritingBudgetExceeded):
        engine.answer(QUERY, DATABASE)
    with _backend() as backend, pytest.raises(RewritingBudgetExceeded):
        engine.answer_sql(QUERY, backend)


def test_partial_status_is_visible_in_trace():
    engine = FORewritingEngine(
        RULES, budget=RewritingBudget(max_depth=1)
    )
    with obs.capture() as cap:
        engine.answer(QUERY, DATABASE, require_complete=False)
    assert cap.span("rewrite")["attrs"]["complete"] is False
    assert cap.span("engine.rewrite")["attrs"]["complete"] is False
    answer_span = cap.span("engine.answer")
    assert answer_span["attrs"]["complete"] is False
    assert answer_span["attrs"]["backend"] == "memory"


def test_complete_status_is_visible_in_trace():
    engine = FORewritingEngine(RULES)
    with obs.capture() as cap:
        engine.answer(QUERY, DATABASE)
    assert cap.span("rewrite")["attrs"]["complete"] is True
    assert cap.span("engine.answer")["attrs"]["complete"] is True


def test_deeper_budgets_converge_monotonically():
    """Increasing depth budgets only ever add answers, up to the fixpoint."""
    full = _full_answers()
    previous = frozenset()
    for depth in range(0, 6):
        engine = FORewritingEngine(
            RULES, budget=RewritingBudget(max_depth=depth)
        )
        answers = engine.answer(QUERY, DATABASE, require_complete=False)
        assert previous <= answers <= full
        previous = answers
    assert previous == full
