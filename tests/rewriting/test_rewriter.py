"""Tests for repro.rewriting.rewriter (the saturation engine)."""

import pytest

from repro.lang.errors import RewritingBudgetExceeded
from repro.lang.parser import parse_program, parse_query, parse_ucq
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.rewriter import rewrite
from repro.workloads.paper import EXAMPLE2_QUERY, example1, example2, example3


class TestHierarchies:
    def test_concept_hierarchy_rewriting(self, hierarchy_rules):
        result = rewrite(parse_query("q(X) :- d(X)"), hierarchy_rules)
        assert result.complete
        assert result.size == 4  # d, c, b, a
        relations = {cq.body[0].relation for cq in result.ucq}
        assert relations == {"a", "b", "c", "d"}

    def test_query_on_bottom_concept_unchanged(self, hierarchy_rules):
        result = rewrite(parse_query("q(X) :- a(X)"), hierarchy_rules)
        assert result.complete and result.size == 1

    def test_existential_chain(self, existential_rules):
        result = rewrite(parse_query("q(Y) :- org(Y)"), existential_rules)
        assert result.complete
        # org(Y) and worksAt(X, Y); NOT person (Y would be a null).
        relations = {cq.body[0].relation for cq in result.ucq}
        assert relations == {"org", "worksAt"}

    def test_boolean_existential_chain_reaches_person(
        self, existential_rules
    ):
        result = rewrite(parse_query("q() :- org(Y)"), existential_rules)
        assert result.complete
        relations = {cq.body[0].relation for cq in result.ucq}
        assert relations == {"org", "worksAt", "person"}


class TestPaperExamples:
    def test_example1_terminates(self):
        result = rewrite(parse_query("q(X) :- r(X, Y)"), example1())
        assert result.complete
        assert result.size == 3

    def test_example1_subsumption_closes_the_loop(self):
        # The v -> r -> s -> v cycle only terminates because subsumed
        # rewritings are pruned; saturation must still finish.
        result = rewrite(parse_query("q(X, Y) :- v(X, Y)"), example1())
        assert result.complete

    def test_example2_unbounded_chain_hits_budget(self):
        result = rewrite(
            EXAMPLE2_QUERY,
            example2(),
            RewritingBudget(max_depth=12, max_cqs=100_000),
        )
        assert not result.complete

    def test_example2_growth_is_monotone(self):
        sizes = [
            rewrite(
                EXAMPLE2_QUERY,
                example2(),
                RewritingBudget(max_depth=depth),
            ).max_body_atoms
            for depth in (2, 4, 6, 8)
        ]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_example3_terminates_on_all_atomic_queries(self):
        rules = example3()
        for text in (
            "q(X) :- u(X)",
            "q(X, Y) :- r(X, Y)",
            "q(X, Y, Z) :- s(X, Y, Z)",
            "q(X, Y, Z) :- t(X, Y, Z)",
        ):
            result = rewrite(parse_query(text), rules)
            assert result.complete, text

    def test_example3_blocked_recursion(self):
        # The R1/R2/R3 loop never applies: the rewriting of u+t stays
        # put.
        result = rewrite(
            parse_query("q(X) :- u(X), t(X, X, Y)"), example3()
        )
        assert result.complete
        assert result.size == 1


class TestBudgets:
    def test_depth_zero_returns_input(self, hierarchy_rules):
        result = rewrite(
            parse_query("q(X) :- d(X)"),
            hierarchy_rules,
            RewritingBudget(max_depth=0),
        )
        assert not result.complete
        assert result.size == 1

    def test_strict_budget_raises(self):
        with pytest.raises(RewritingBudgetExceeded):
            rewrite(
                EXAMPLE2_QUERY,
                example2(),
                RewritingBudget(max_depth=3, strict=True),
            )

    def test_max_cqs_budget(self, hierarchy_rules):
        result = rewrite(
            parse_query("q(X) :- d(X)"),
            hierarchy_rules,
            RewritingBudget(max_cqs=2),
        )
        assert not result.complete
        assert result.generated >= 2

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            RewritingBudget(max_depth=-1)
        with pytest.raises(ValueError):
            RewritingBudget(max_cqs=0)


class TestResultStructure:
    def test_per_depth_series(self, hierarchy_rules):
        result = rewrite(parse_query("q(X) :- d(X)"), hierarchy_rules)
        assert result.per_depth[0] == 1
        assert sum(result.per_depth) == result.generated

    def test_output_has_no_subsumed_disjuncts(self, hierarchy_rules):
        from repro.rewriting.minimize import is_subsumed

        result = rewrite(parse_query("q(X) :- d(X)"), hierarchy_rules)
        disjuncts = list(result.ucq)
        for i, a in enumerate(disjuncts):
            for j, b in enumerate(disjuncts):
                if i != j:
                    assert not is_subsumed(a, b)

    def test_ucq_input_accepted(self, hierarchy_rules):
        ucq = parse_ucq("q(X) :- c(X). q(X) :- d(X).")
        result = rewrite(ucq, hierarchy_rules)
        assert result.complete
        assert result.size == 4  # a, b, c, d (c/d disjuncts merge paths)

    def test_rewriting_of_rule_free_program(self):
        result = rewrite(parse_query("q(X) :- r(X)"), [])
        assert result.complete and result.size == 1


class TestMultiHead:
    def test_multi_head_rule_rewrites_joined_pair(self):
        rules = parse_program("a(X) -> b(X, Y), c(Y).")
        result = rewrite(parse_query("q(X) :- b(X, Y), c(Y)"), rules)
        assert result.complete
        relations = sorted(
            tuple(sorted(a.relation for a in cq.body)) for cq in result.ucq
        )
        assert ("a",) in relations

    def test_multi_head_partial_match_still_requires_null_safety(self):
        rules = parse_program("a(X) -> b(X, Y), c(Y).")
        # c alone: Y is existential in the query, fine.
        result = rewrite(parse_query("q() :- c(Y)"), rules)
        assert result.complete
        bodies = {cq.body[0].relation for cq in result.ucq}
        assert bodies == {"c", "a"}


class TestTimeBudget:
    def test_time_ceiling_cuts_divergence(self):
        import time

        start = time.monotonic()
        result = rewrite(
            EXAMPLE2_QUERY,
            example2(),
            RewritingBudget(max_cqs=10_000_000, max_seconds=2),
        )
        elapsed = time.monotonic() - start
        assert not result.complete
        assert elapsed < 30  # generous CI margin over the 2s ceiling

    def test_time_ceiling_irrelevant_when_fast(self, hierarchy_rules):
        result = rewrite(
            parse_query("q(X) :- d(X)"),
            hierarchy_rules,
            RewritingBudget(max_seconds=60),
        )
        assert result.complete

    def test_invalid_time_budget_rejected(self):
        with pytest.raises(ValueError):
            RewritingBudget(max_seconds=0)
