"""Tests for the PerfectRef baseline (repro.rewriting.perfectref)."""

import random

import pytest

from repro.chase.certain import certain_answers
from repro.chase.termination import is_weakly_acyclic
from repro.data.database import Database
from repro.data.evaluation import evaluate_ucq
from repro.lang.errors import NotSupportedError
from repro.lang.parser import parse_program, parse_query
from repro.rewriting.perfectref import perfectref_rewrite
from repro.rewriting.rewriter import rewrite
from repro.workloads.generators import generate_database, random_linear


class TestScope:
    def test_non_linear_rejected(self):
        rules = parse_program("a(X), b(X) -> c(X).")
        with pytest.raises(NotSupportedError):
            perfectref_rewrite(parse_query("q(X) :- c(X)"), rules)

    def test_multi_head_rejected(self):
        rules = parse_program("a(X) -> b(X), c(X).")
        with pytest.raises(NotSupportedError):
            perfectref_rewrite(parse_query("q(X) :- c(X)"), rules)


class TestBasics:
    def test_hierarchy(self, hierarchy_rules):
        result = perfectref_rewrite(
            parse_query("q(X) :- d(X)"), hierarchy_rules
        )
        assert result.complete
        assert result.size == 4

    def test_existential_applicability(self, existential_rules):
        # q(Y) :- org(Y): Y is an answer variable, so the worksAt
        # rewriting stops before inventing it from person.
        result = perfectref_rewrite(
            parse_query("q(Y) :- org(Y)"), existential_rules
        )
        relations = {cq.body[0].relation for cq in result.ucq}
        assert relations == {"org", "worksAt"}

    def test_boolean_goes_deeper(self, existential_rules):
        result = perfectref_rewrite(
            parse_query("q() :- org(Y)"), existential_rules
        )
        relations = {cq.body[0].relation for cq in result.ucq}
        assert relations == {"org", "worksAt", "person"}

    def test_reduce_step_enables_rewriting(self):
        # Two atoms must be merged before the rule head r(X, Z)
        # applies (Y is shared between them).
        rules = parse_program("a(X) -> r(X, Z).")
        result = perfectref_rewrite(
            parse_query("q() :- r(X, Y), r(X2, Y)"), rules
        )
        relations = {
            frozenset(a.relation for a in cq.body) for cq in result.ucq
        }
        assert frozenset({"a"}) in relations


class TestAgreementWithPieceEngine:
    @pytest.mark.parametrize("seed", range(12))
    def test_same_ucq_on_random_linear_sets(self, seed):
        rules = random_linear(random.Random(seed), n_rules=5)
        # One atomic query on the signature's first relation.
        from repro.lang.signature import Signature
        from repro.lang.atoms import Atom
        from repro.lang.queries import ConjunctiveQuery
        from repro.lang.terms import Variable

        signature = Signature.from_rules(rules)
        relation = signature.relations()[0]
        variables = [
            Variable(f"Q{i}") for i in range(signature[relation])
        ]
        query = ConjunctiveQuery(variables[:1], [Atom(relation, variables)])

        baseline = perfectref_rewrite(query, rules)
        general = rewrite(query, rules)
        assert baseline.complete and general.complete
        assert baseline.ucq == general.ucq, [str(r) for r in rules]

    @pytest.mark.parametrize("seed", range(6))
    def test_baseline_answers_match_chase(self, seed):
        rules = random_linear(random.Random(100 + seed), n_rules=4)
        if not is_weakly_acyclic(rules):
            pytest.skip("chase ground truth unavailable")
        from repro.lang.signature import Signature
        from repro.lang.atoms import Atom
        from repro.lang.queries import ConjunctiveQuery
        from repro.lang.terms import Variable

        signature = Signature.from_rules(rules)
        relation = signature.relations()[0]
        variables = [Variable(f"Q{i}") for i in range(signature[relation])]
        query = ConjunctiveQuery(variables[:1], [Atom(relation, variables)])
        result = perfectref_rewrite(query, rules)
        if not result.complete:
            pytest.skip("baseline did not converge in budget")
        database = Database(
            generate_database(random.Random(seed), rules, facts_per_relation=4)
        )
        assert evaluate_ucq(result.ucq, database) == certain_answers(
            query, rules, database, max_steps=100_000
        )
