"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.data.database import Database
from repro.lang.parser import parse_database, parse_program, parse_query


@pytest.fixture
def hierarchy_rules():
    """A three-level concept hierarchy (linear, SWR, everything)."""
    return parse_program(
        """
        r1: a(X) -> b(X).
        r2: b(X) -> c(X).
        r3: c(X) -> d(X).
        """
    )


@pytest.fixture
def existential_rules():
    """Rules with value invention: everyone works somewhere."""
    return parse_program(
        """
        r1: person(X) -> worksAt(X, Y).
        r2: worksAt(X, Y) -> org(Y).
        """
    )


@pytest.fixture
def small_database():
    return Database(
        parse_database(
            """
            a(one). a(two). b(three).
            person(ada). person(alan).
            worksAt(ada, lab).
            """
        )
    )


def q(text: str):
    """Terse query-parsing helper for test bodies."""
    return parse_query(text)


def rules(text: str):
    """Terse program-parsing helper for test bodies."""
    return parse_program(text)
