"""Shared fixtures, hypothesis profiles and helpers for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.data.database import Database
from repro.lang.parser import parse_database, parse_program, parse_query

# Deterministic hypothesis profiles.  ``ci`` derandomizes every
# property test (fixed seed, no example database) so CI runs are
# reproducible; ``dev`` keeps random exploration for local runs.
# Select with HYPOTHESIS_PROFILE=ci or pytest --hypothesis-profile=ci.
settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=60,
    deadline=None,
    database=None,
    print_blob=False,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


# ------------------------------------------------------------------ #
# Lock-order sanitizer (REPRO_LOCK_SANITIZER=1)                        #
# ------------------------------------------------------------------ #
# The nightly CI job runs the whole tier-1 suite with the runtime
# lock-order sanitizer installed: every Lock/RLock allocated by a
# repro module is wrapped, acquisition order is recorded globally, and
# any inversion of the declared order (docs/concurrency.md) fails the
# run here, even if the schedule never actually deadlocked.


def pytest_configure(config):
    from repro.audit import sanitizer

    if sanitizer.enabled_from_env():
        sanitizer.install()
        sanitizer.reset()


def pytest_sessionfinish(session, exitstatus):
    from repro.audit import sanitizer

    if not sanitizer.enabled_from_env() or not sanitizer.installed():
        return
    found = sanitizer.violations()
    if found:
        session.exitstatus = 3
        print("\n" + sanitizer.report())


@pytest.fixture
def hierarchy_rules():
    """A three-level concept hierarchy (linear, SWR, everything)."""
    return parse_program(
        """
        r1: a(X) -> b(X).
        r2: b(X) -> c(X).
        r3: c(X) -> d(X).
        """
    )


@pytest.fixture
def existential_rules():
    """Rules with value invention: everyone works somewhere."""
    return parse_program(
        """
        r1: person(X) -> worksAt(X, Y).
        r2: worksAt(X, Y) -> org(Y).
        """
    )


@pytest.fixture
def small_database():
    return Database(
        parse_database(
            """
            a(one). a(two). b(three).
            person(ada). person(alan).
            worksAt(ada, lab).
            """
        )
    )


def q(text: str):
    """Terse query-parsing helper for test bodies."""
    return parse_query(text)


def rules(text: str):
    """Terse program-parsing helper for test bodies."""
    return parse_program(text)
