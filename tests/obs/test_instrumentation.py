"""The pipeline emits the counters and spans the ISSUE promises.

These tests pin the *names* and basic semantics of the instrumentation
wired through rewriting, chase, SQL and OBDA layers -- renaming a
counter is a breaking change for dashboards and the BENCH artifacts.
"""

from __future__ import annotations

from repro import obs
from repro.chase import restricted_chase
from repro.data.database import Database
from repro.data.sql import SQLiteBackend
from repro.lang.parser import parse_database, parse_program, parse_query
from repro.lang.signature import Signature
from repro.obda.system import OBDASystem
from repro.rewriting.engine import FORewritingEngine
from repro.rewriting.store import RewritingStore, precompile_workload

RULES = parse_program(
    """
    r1: person(X) -> worksAt(X, Y).
    r2: worksAt(X, Y) -> org(Y).
    r3: professor(X) -> person(X).
    """
)
DATABASE = Database(
    parse_database("person(ada). professor(alan). worksAt(ada, lab).")
)


def test_rewriting_counters():
    query = parse_query("q(X) :- org(X)")
    with obs.capture() as cap:
        FORewritingEngine(RULES).rewrite(query)
    counters = cap.counters()
    assert counters["rewrite.cqs_generated"] >= 1
    assert counters["rewrite.cqs_explored"] >= 1
    assert counters["rewrite.candidates"] >= 1
    assert "minimize.subsumption_checks" in counters
    assert cap.span("rewrite")["attrs"]["complete"] is True
    assert cap.spans("rewrite.round")


def test_chase_counters_match_result():
    with obs.capture() as cap:
        result = restricted_chase(RULES, DATABASE)
    counters = cap.counters()
    assert counters["chase.firings"] == result.steps
    assert counters["chase.rounds"] == len(cap.spans("chase.round"))
    assert counters["chase.nulls_created"] >= 1  # r1 invents workplaces
    assert counters["chase.triggers_checked"] >= result.steps
    span = cap.span("chase")
    assert span["attrs"]["mode"] == "restricted"
    assert span["attrs"]["fixpoint"] is True
    assert span["attrs"]["nulls"] == counters["chase.nulls_created"]


def test_sql_counters(tmp_path):
    query = parse_query("q(X) :- person(X)")
    signature = Signature(dict(DATABASE.signature))
    for rule in RULES:
        signature.observe_tgd(rule)
    with obs.capture() as cap:
        with SQLiteBackend(signature) as backend:
            backend.load(DATABASE.facts())
            FORewritingEngine(RULES).answer_sql(query, backend)
    counters = cap.counters()
    assert counters["sql.rows_loaded"] == len(DATABASE)
    assert counters["sql.statements"] >= 1
    assert counters["sql.rows_fetched"] >= 2  # ada and alan
    assert cap.span("sql.execute")["attrs"]["kind"] in ("cq", "ucq")
    assert cap.spans("sql.compile")


def test_store_hit_and_miss_counters(tmp_path):
    queries = [parse_query("q(X) :- org(X)")]
    store = precompile_workload(queries, RULES)
    path = tmp_path / "workload.store"
    with obs.capture() as cap:
        store.save(path)
        loaded = RewritingStore.load(path)
        assert loaded.get(queries[0]) is not None  # hit
        assert loaded.get(parse_query("q(X) :- person(X)")) is None  # miss
    counters = cap.counters()
    assert counters["store.entries_saved"] == 1
    assert counters["store.entries_loaded"] == 1
    assert counters["store.hits"] == 1
    assert counters["store.misses"] == 1


def test_obda_spans_cover_both_backends():
    query = parse_query("q(X) :- person(X)")
    with obs.capture() as cap, OBDASystem(RULES, DATABASE) as system:
        memory = system.certain_answers(query)
        sql = system.certain_answers_sql(query)
        chase = system.certain_answers_chase(query)
    assert memory == sql == chase
    backends = {
        span["attrs"]["backend"] for span in cap.spans("obda.answer")
    }
    assert backends == {"memory", "sqlite"}
    assert cap.span("obda.sql_backend_init")["attrs"]["facts"] == len(
        DATABASE
    )
    oracle_span = cap.span("obda.chase_oracle")
    assert oracle_span["attrs"]["answers"] == len(chase)
    assert oracle_span["attrs"]["chase_steps"] >= 1


def test_disabled_instrumentation_leaves_results_unchanged():
    """With the default null tracer the pipeline behaves identically."""
    query = parse_query("q(X) :- org(X)")
    baseline = FORewritingEngine(RULES).answer(query, DATABASE)
    with obs.capture() as cap:
        traced = FORewritingEngine(RULES).answer(query, DATABASE)
    assert traced == baseline
    assert cap.spans("rewrite")
