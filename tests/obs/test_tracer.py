"""Unit tests for the tracer: spans, counters, installation."""

from __future__ import annotations

from repro import obs
from repro.obs import InMemorySink, NullSink, Tracer
from repro.obs.tracer import NOOP_SPAN


def test_disabled_tracer_records_nothing():
    tracer = Tracer()
    assert not tracer.enabled
    handle = tracer.span("anything", key="value")
    assert handle is NOOP_SPAN
    with handle as span:
        span.set(more="attrs")
    tracer.count("counter", 5)
    tracer.observe("histogram", 1.0)
    tracer.event("event")
    tracer.flush()
    assert tracer.counters() == {}


def test_null_sink_keeps_tracer_disabled():
    tracer = Tracer(NullSink())
    assert not tracer.enabled
    assert tracer.span("x") is NOOP_SPAN


def test_span_nesting_parent_and_depth():
    sink = InMemorySink()
    tracer = Tracer(sink)
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert inner.parent_id == outer.span_id
            assert inner.depth == 1
    inner_rec, outer_rec = sink.records
    assert inner_rec["name"] == "inner"  # children close first
    assert outer_rec["name"] == "outer"
    assert inner_rec["parent"] == outer_rec["id"]
    assert outer_rec["parent"] is None
    assert inner_rec["depth"] == 1 and outer_rec["depth"] == 0
    assert inner_rec["dur_ms"] <= outer_rec["dur_ms"] + 1e-6


def test_span_attrs_merge_creation_and_set():
    sink = InMemorySink()
    tracer = Tracer(sink)
    with tracer.span("s", a=1) as span:
        span.set(b=2, a=3)
    assert sink.span("s")["attrs"] == {"a": 3, "b": 2}


def test_span_closes_on_exception():
    sink = InMemorySink()
    tracer = Tracer(sink)
    try:
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert [r["name"] for r in sink.spans()] == ["inner", "outer"]
    assert not tracer._stack


def test_counters_aggregate_and_flush():
    sink = InMemorySink()
    tracer = Tracer(sink)
    tracer.count("hits")
    tracer.count("hits", 2)
    tracer.observe("latency", 1.0)
    tracer.observe("latency", 3.0)
    assert tracer.counter("hits") == 3
    assert tracer.counter("absent") == 0
    tracer.flush()
    assert sink.counters() == {"hits": 3}
    histogram = [r for r in sink.records if r["type"] == "histogram"]
    assert len(histogram) == 1
    assert histogram[0]["count"] == 2
    assert histogram[0]["mean"] == 2.0
    assert histogram[0]["min"] == 1.0
    assert histogram[0]["max"] == 3.0


def test_events_emit_immediately():
    sink = InMemorySink()
    tracer = Tracer(sink)
    tracer.event("lookup", status="hit")
    assert sink.events("lookup")[0]["attrs"] == {"status": "hit"}


def test_use_installs_and_restores():
    before = obs.get_tracer()
    assert not obs.enabled()
    with obs.use(InMemorySink()) as tracer:
        assert obs.get_tracer() is tracer
        assert obs.enabled()
    assert obs.get_tracer() is before
    assert not obs.enabled()


def test_use_inherit_stacks_sinks():
    outer_sink = InMemorySink()
    inner_sink = InMemorySink()
    with obs.use(outer_sink):
        with obs.use(inner_sink) as inner:
            with obs.span("shared"):
                pass
            assert inner.sinks == (outer_sink, inner_sink)
    assert [r["name"] for r in inner_sink.spans()] == ["shared"]
    assert [r["name"] for r in outer_sink.spans()] == ["shared"]


def test_capture_is_isolated_from_outer_tracer():
    outer_sink = InMemorySink()
    with obs.use(outer_sink):
        with obs.capture() as cap:
            obs.count("only.inner")
            with obs.span("inner.span"):
                pass
        assert cap.counter("only.inner") == 1
        assert cap.spans("inner.span")
    assert outer_sink.spans() == []


def test_module_functions_are_noops_when_disabled():
    assert obs.span("x") is NOOP_SPAN
    obs.count("x")
    obs.observe("x", 1.0)
    obs.event("x")
    assert obs.get_tracer().counters() == {}


def test_capture_counters_live_snapshot():
    with obs.capture() as cap:
        obs.count("a", 2)
        assert cap.counters() == {"a": 2}
        obs.count("a")
        assert cap.counter("a") == 3
    # After exit the counter records were flushed into the sink too.
    assert cap.sink.counters() == {"a": 3}
