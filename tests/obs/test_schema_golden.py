"""Golden test for the JSONL metrics schema.

Every record emitted through ``--metrics`` (or any :class:`JSONLSink`)
must match the schema documented in ``docs/observability.md`` *exactly*
-- same key set, same value types.  Downstream consumers (the BENCH
artifacts, ad-hoc ``jq`` pipelines) parse these records, so adding,
removing or retyping a field is a breaking change: when this test
fails, bump ``SCHEMA_VERSION`` and update the docs along with the
golden tables below.
"""

from __future__ import annotations

import io
import json

from repro import obs
from repro.lang.parser import parse_database, parse_program, parse_query
from repro.data.database import Database
from repro.obs import JSONLSink
from repro.obs.tracer import SCHEMA_VERSION
from repro.rewriting.engine import FORewritingEngine

# The golden schema: record type -> {field: allowed value types}.
# ``parent`` is the only nullable field (None on root spans).
GOLDEN_FIELDS = {
    "span": {
        "v": int,
        "type": str,
        "name": str,
        "id": int,
        "parent": (int, type(None)),
        "depth": int,
        "start_ms": (int, float),
        "dur_ms": (int, float),
        "attrs": dict,
    },
    "event": {
        "v": int,
        "type": str,
        "name": str,
        "at_ms": (int, float),
        "attrs": dict,
    },
    "counter": {
        "v": int,
        "type": str,
        "name": str,
        "value": (int, float),
    },
    "histogram": {
        "v": int,
        "type": str,
        "name": str,
        "count": int,
        "sum": (int, float),
        "min": (int, float),
        "max": (int, float),
        "mean": (int, float),
    },
}


def _emit_all_record_types() -> list[dict]:
    """A real pipeline run that produces every record type."""
    buffer = io.StringIO()
    rules = parse_program("r1: a(X) -> b(X). r2: b(X) -> c(X).")
    database = Database(parse_database("a(one). b(two)."))
    query = parse_query("q(X) :- c(X)")
    with obs.use(JSONLSink(buffer)):
        FORewritingEngine(rules).answer(query, database)
        obs.event("golden.event", detail="x")
        obs.observe("golden.histogram", 1.5)
        obs.observe("golden.histogram", 2.5)
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


def test_schema_version_is_current():
    assert SCHEMA_VERSION == 1


def test_every_record_type_is_exercised():
    kinds = {record["type"] for record in _emit_all_record_types()}
    assert kinds == set(GOLDEN_FIELDS)


def test_records_match_golden_schema_exactly():
    records = _emit_all_record_types()
    assert records, "pipeline emitted nothing"
    for record in records:
        golden = GOLDEN_FIELDS[record["type"]]
        assert set(record) == set(golden), (
            f"record keys drifted from golden schema: {record}"
        )
        assert record["v"] == SCHEMA_VERSION
        for field, expected in golden.items():
            assert isinstance(record[field], expected), (
                f"{record['type']}.{field} has type "
                f"{type(record[field]).__name__}, expected {expected}: "
                f"{record}"
            )


def test_attrs_values_are_json_scalars():
    """Span/event attrs must stay flat and JSON-scalar for consumers."""
    for record in _emit_all_record_types():
        for key, value in record.get("attrs", {}).items():
            assert isinstance(key, str)
            assert isinstance(value, (str, int, float, bool, type(None))), (
                f"attr {key}={value!r} is not a JSON scalar"
            )


def test_span_parents_reference_earlier_ids():
    records = _emit_all_record_types()
    spans = [r for r in records if r["type"] == "span"]
    ids = {span["id"] for span in spans}
    for span in spans:
        if span["parent"] is not None:
            assert span["parent"] in ids
            assert span["depth"] >= 1
        else:
            assert span["depth"] == 0
