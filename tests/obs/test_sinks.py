"""Unit tests for the provided sinks."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import InMemorySink, JSONLSink, NullSink, TreeSink, Tracer


def test_null_sink_is_null():
    sink = NullSink()
    assert sink.is_null
    sink.emit({"type": "span"})  # swallowed
    sink.close()


def test_in_memory_sink_helpers():
    sink = InMemorySink()
    tracer = Tracer(sink)
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    tracer.event("hit", key=1)
    tracer.count("n", 2)
    tracer.flush()

    assert [r["name"] for r in sink.spans()] == ["inner", "outer"]
    assert len(sink.spans("inner")) == 1
    assert sink.span("outer")["name"] == "outer"
    with pytest.raises(KeyError):
        sink.span("absent")
    assert sink.events("hit")[0]["attrs"] == {"key": 1}
    assert sink.events() == sink.events("hit")
    assert sink.counters() == {"n": 2}
    sink.clear()
    assert sink.records == []


def test_jsonl_sink_writes_one_json_object_per_line(tmp_path):
    path = tmp_path / "metrics.jsonl"
    sink = JSONLSink(path)
    tracer = Tracer(sink)
    with tracer.span("work", items=3):
        tracer.event("checkpoint")
    tracer.count("total", 7)
    tracer.flush()
    sink.close()

    lines = path.read_text().splitlines()
    records = [json.loads(line) for line in lines]
    assert [r["type"] for r in records] == ["event", "span", "counter"]
    assert all(r["v"] == 1 for r in records)
    # Keys are sorted for stable diffs.
    assert lines[2] == json.dumps(records[2], sort_keys=True)


def test_jsonl_sink_path_opened_lazily(tmp_path):
    path = tmp_path / "never.jsonl"
    sink = JSONLSink(path)
    sink.close()
    assert not path.exists()


def test_jsonl_sink_accepts_file_like():
    buffer = io.StringIO()
    sink = JSONLSink(buffer)
    sink.emit({"v": 1, "type": "event", "name": "x", "at_ms": 0, "attrs": {}})
    sink.close()  # must not close a handle it did not open
    assert not buffer.closed
    assert json.loads(buffer.getvalue())["name"] == "x"


def test_tree_sink_renders_nested_spans():
    sink = TreeSink()
    tracer = Tracer(sink)
    with tracer.span("root", stage="all"):
        with tracer.span("child.a"):
            with tracer.span("leaf"):
                pass
        with tracer.span("child.b"):
            pass
    tracer.count("widgets", 4)
    tracer.flush()

    text = sink.render()
    lines = text.splitlines()
    assert lines[0].startswith("root")
    assert "stage=all" in lines[0]
    assert "ms" in lines[0]
    assert any(line.startswith("├─ child.a") for line in lines)
    assert any(line.startswith("│  └─ leaf") for line in lines)
    assert any(line.startswith("└─ child.b") for line in lines)
    assert "counters:" in text
    assert "widgets" in text


def test_tree_sink_renders_multiple_roots_without_connectors():
    sink = TreeSink()
    tracer = Tracer(sink)
    with tracer.span("first"):
        pass
    with tracer.span("second"):
        pass
    lines = sink.render().splitlines()
    assert lines[0].startswith("first")
    assert lines[1].startswith("second")


def test_tree_sink_renders_events_section():
    sink = TreeSink()
    tracer = Tracer(sink)
    with tracer.span("root"):
        tracer.event("trace.differential", agree=True)
    text = sink.render()
    assert "events:" in text
    assert "trace.differential" in text
    assert "agree=True" in text
