"""End-to-end tests for ``repro trace`` and the global ``--metrics`` flag."""

from __future__ import annotations

import json
from pathlib import Path

from repro import cli

EXAMPLE = str(Path(__file__).resolve().parents[2] / "examples" / "example1.dlp")


def test_trace_prints_span_tree(capsys):
    assert cli.main(["trace", EXAMPLE]) == 0
    out = capsys.readouterr().out
    assert "trace" in out
    assert "engine.rewrite" in out
    assert "rewrite.round" in out
    assert "ms" in out
    assert "counters:" in out
    assert "rewrite.cqs_generated" in out


def test_trace_with_explicit_query(capsys):
    assert cli.main(["trace", EXAMPLE, "q(X) :- s2(X, Y)"]) == 0
    out = capsys.readouterr().out
    assert "sql.compile" in out


def test_trace_metrics_emits_valid_jsonl(tmp_path, capsys):
    metrics = tmp_path / "out.jsonl"
    assert cli.main(["--metrics", str(metrics), "trace", EXAMPLE]) == 0
    capsys.readouterr()
    records = [
        json.loads(line) for line in metrics.read_text().splitlines()
    ]
    assert records
    assert all(record["v"] == 1 for record in records)
    kinds = {record["type"] for record in records}
    assert "span" in kinds
    assert "counter" in kinds
    names = {r["name"] for r in records if r["type"] == "span"}
    assert {"trace", "rewrite", "engine.rewrite"} <= names


def test_metrics_flag_works_with_other_commands(tmp_path, capsys):
    metrics = tmp_path / "answer.jsonl"
    code = cli.main(
        ["--metrics", str(metrics), "rewrite", EXAMPLE, "q(X) :- s2(X, Y)"]
    )
    capsys.readouterr()
    assert code == 0
    records = [
        json.loads(line) for line in metrics.read_text().splitlines()
    ]
    assert any(r["type"] == "span" and r["name"] == "rewrite" for r in records)


def test_trace_missing_file_fails_cleanly(capsys, tmp_path):
    code = cli.main(["trace", str(tmp_path / "nope.dlp")])
    assert code != 0
