"""Tests for repro.graphs.analysis (the structural census)."""

from repro.graphs.analysis import census
from repro.graphs.cycles import LabeledGraph
from repro.graphs.pnode_graph import build_pnode_graph
from repro.graphs.position_graph import build_position_graph
from repro.workloads.paper import example1, example2


def graph_of(edges):
    graph = LabeledGraph()
    for source, target, labels in edges:
        graph.add_edge(source, target, labels)
    return graph


class TestCensus:
    def test_counts(self):
        graph = graph_of(
            [("a", "b", ("m",)), ("b", "a", ("s",)), ("b", "c", ())]
        )
        result = census(graph)
        assert result.nodes == 3
        assert result.edges == 3
        assert result.label_counts == {"m": 1, "s": 1}

    def test_cycle_label_sets(self):
        graph = graph_of([("a", "b", ("m",)), ("b", "a", ("s",))])
        result = census(graph)
        assert result.cyclic_scc_count == 1
        assert result.cycle_label_sets == (frozenset({"m", "s"}),)

    def test_acyclic_graph(self):
        graph = graph_of([("a", "b", ("m",))])
        result = census(graph)
        assert result.cyclic_scc_count == 0
        assert result.cycle_label_sets == ()
        assert "acyclic" in result.format()

    def test_self_loop_is_cyclic(self):
        graph = graph_of([("a", "a", ("d",))])
        assert census(graph).cyclic_scc_count == 1

    def test_example1_census_matches_swr_story(self):
        result = census(build_position_graph(example1()).graph)
        assert "s" not in result.label_counts     # no s-edges at all
        assert result.cyclic_scc_count == 1       # the harmless cycle
        assert frozenset() in result.cycle_label_sets

    def test_example2_pnode_census_shows_danger(self):
        result = census(build_pnode_graph(example2()).graph)
        assert any(
            {"d", "m", "s"} <= labels for labels in result.cycle_label_sets
        )

    def test_format_lists_labels_sorted(self):
        graph = graph_of([("a", "b", ("s", "m", "d"))])
        text = census(graph).format()
        assert text.index("d-edges") < text.index("m-edges") < text.index(
            "s-edges"
        )
