"""Tests for repro.graphs.dot (Graphviz rendering)."""

from repro.graphs.dot import pnode_graph_to_dot, position_graph_to_dot
from repro.graphs.pnode_graph import build_pnode_graph
from repro.graphs.position_graph import build_position_graph
from repro.workloads.paper import example1, example2


class TestPositionGraphDot:
    def test_valid_digraph_structure(self):
        dot = position_graph_to_dot(build_position_graph(example1()))
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_all_nodes_rendered(self):
        graph = build_position_graph(example1())
        dot = position_graph_to_dot(graph)
        for position in graph.positions:
            assert str(position) in dot

    def test_edge_labels_rendered(self):
        dot = position_graph_to_dot(build_position_graph(example1()))
        assert 'label="m"' in dot

    def test_custom_name(self):
        dot = position_graph_to_dot(
            build_position_graph(example1()), name="Fig1"
        )
        assert "digraph Fig1" in dot


class TestPNodeGraphDot:
    def test_dangerous_cycle_highlighted(self):
        dot = pnode_graph_to_dot(build_pnode_graph(example2()))
        assert "color=red" in dot

    def test_no_highlight_for_safe_graphs(self):
        dot = pnode_graph_to_dot(build_pnode_graph(example1()))
        assert "color=red" not in dot

    def test_highlight_can_be_disabled(self):
        dot = pnode_graph_to_dot(
            build_pnode_graph(example2()), highlight_dangerous=False
        )
        assert "color=red" not in dot

    def test_quotes_escaped(self):
        from repro.lang.parser import parse_program

        rules = parse_program('a(X, "k") -> r(X). r(X) -> p(X).')
        dot = pnode_graph_to_dot(build_pnode_graph(rules))
        assert '\\"k\\"' in dot
