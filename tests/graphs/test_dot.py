"""Tests for repro.graphs.dot (Graphviz rendering)."""

import os
import subprocess
import sys
from pathlib import Path

from repro.graphs.dot import pnode_graph_to_dot, position_graph_to_dot
from repro.graphs.pnode_graph import build_pnode_graph
from repro.graphs.position_graph import build_position_graph
from repro.workloads.paper import example1, example2

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestPositionGraphDot:
    def test_valid_digraph_structure(self):
        dot = position_graph_to_dot(build_position_graph(example1()))
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_all_nodes_rendered(self):
        graph = build_position_graph(example1())
        dot = position_graph_to_dot(graph)
        for position in graph.positions:
            assert str(position) in dot

    def test_edge_labels_rendered(self):
        dot = position_graph_to_dot(build_position_graph(example1()))
        assert 'label="m"' in dot

    def test_custom_name(self):
        dot = position_graph_to_dot(
            build_position_graph(example1()), name="Fig1"
        )
        assert "digraph Fig1" in dot


class TestPNodeGraphDot:
    def test_dangerous_cycle_highlighted(self):
        dot = pnode_graph_to_dot(build_pnode_graph(example2()))
        assert "color=red" in dot

    def test_no_highlight_for_safe_graphs(self):
        dot = pnode_graph_to_dot(build_pnode_graph(example1()))
        assert "color=red" not in dot

    def test_highlight_can_be_disabled(self):
        dot = pnode_graph_to_dot(
            build_pnode_graph(example2()), highlight_dangerous=False
        )
        assert "color=red" not in dot

    def test_quotes_escaped(self):
        from repro.lang.parser import parse_program

        rules = parse_program('a(X, "k") -> r(X). r(X) -> p(X).')
        dot = pnode_graph_to_dot(build_pnode_graph(rules))
        assert '\\"k\\"' in dot


class TestSortedRendering:
    """Rendering must be byte-identical regardless of build order."""

    def test_insertion_order_does_not_matter(self):
        from repro.graphs.dot import _render

        graph = build_position_graph(example2())
        nodes, edges = list(graph.positions), list(graph.edges)
        forward = _render("G", nodes, edges)
        backward = _render("G", list(reversed(nodes)), list(reversed(edges)))
        assert forward == backward

    def test_run_twice_identical_bytes(self):
        first = position_graph_to_dot(build_position_graph(example2()))
        second = position_graph_to_dot(build_position_graph(example2()))
        assert first == second

    def test_goldens_are_regenerated(self):
        # The committed figures must match what the sorted renderer emits.
        from repro.workloads.paper import example1 as ex1

        fig1 = position_graph_to_dot(build_position_graph(ex1()), name="Fig1")
        golden = REPO_ROOT / "examples" / "figure1_position_graph.dot"
        assert fig1 + "\n" == golden.read_text()


class TestDeterministicWitness:
    """The highlighted witness cycle must not flip across regenerations.

    ``examples/figure3_pnode_graph.dot`` used to change its ``color=red``
    edges on every run because witness extraction iterated SCC node sets
    in hash order.  Regenerating must now be byte-stable, including
    across interpreter processes with different ``PYTHONHASHSEED``.
    """

    def _render_fig3(self) -> str:
        return pnode_graph_to_dot(build_pnode_graph(example2()), name="Fig3")

    def test_run_twice_identical(self):
        assert self._render_fig3() == self._render_fig3()

    def test_witness_cycle_stable_in_process(self):
        graph = build_pnode_graph(example2())
        assert graph.dangerous_cycle() == graph.dangerous_cycle()

    def _render_in_subprocess(self, hash_seed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        script = (
            "from repro.graphs.pnode_graph import build_pnode_graph\n"
            "from repro.graphs.dot import pnode_graph_to_dot\n"
            "from repro.workloads.paper import example2\n"
            "import sys\n"
            "sys.stdout.write("
            "pnode_graph_to_dot(build_pnode_graph(example2()), 'Fig3'))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return result.stdout

    def test_byte_identical_across_hash_seeds(self):
        first = self._render_in_subprocess("1")
        second = self._render_in_subprocess("31337")
        assert first == second
        golden = REPO_ROOT / "examples" / "figure3_pnode_graph.dot"
        assert first + "\n" == golden.read_text()
