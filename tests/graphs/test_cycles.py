"""Tests for repro.graphs.cycles (labeled graphs, dangerous cycles)."""

from repro.graphs.cycles import LabeledGraph


def graph_of(edges):
    graph = LabeledGraph()
    for source, target, labels in edges:
        graph.add_edge(source, target, labels)
    return graph


class TestConstruction:
    def test_labels_accumulate(self):
        graph = LabeledGraph()
        graph.add_edge("a", "b", ("m",))
        graph.add_edge("a", "b", ("s",))
        assert graph.labels("a", "b") == {"m", "s"}

    def test_nodes_in_insertion_order(self):
        graph = graph_of([("b", "a", ()), ("a", "c", ())])
        assert graph.nodes == ("b", "a", "c")

    def test_edges_with_label(self):
        graph = graph_of([("a", "b", ("m",)), ("b", "c", ())])
        assert len(graph.edges_with_label("m")) == 1

    def test_add_labels_requires_edge(self):
        graph = LabeledGraph()
        try:
            graph.add_labels("x", "y", ("m",))
        except KeyError:
            pass
        else:
            raise AssertionError("expected KeyError")

    def test_successors(self):
        graph = graph_of([("a", "b", ()), ("a", "c", ())])
        assert graph.successors("a") == ("b", "c")

    def test_to_networkx(self):
        graph = graph_of([("a", "b", ("m",))])
        nxg = graph.to_networkx()
        assert nxg["a"]["b"]["labels"] == {"m"}


class TestLabeledCycles:
    def test_no_cycle_in_dag(self):
        graph = graph_of([("a", "b", ("m",)), ("b", "c", ("s",))])
        assert graph.find_labeled_cycle(("m", "s")) is None

    def test_cycle_with_both_labels_on_distinct_edges(self):
        graph = graph_of([("a", "b", ("m",)), ("b", "a", ("s",))])
        witness = graph.find_labeled_cycle(("m", "s"))
        assert witness is not None
        labels = set().union(*(e.labels for e in witness))
        assert {"m", "s"} <= labels

    def test_cycle_with_both_labels_on_one_edge(self):
        graph = graph_of([("a", "b", ("m", "s")), ("b", "a", ())])
        assert graph.find_labeled_cycle(("m", "s")) is not None

    def test_labels_in_different_cycles_do_not_combine(self):
        # Two disjoint cycles: one with m, one with s. No single cycle
        # carries both.
        graph = graph_of(
            [
                ("a", "b", ("m",)),
                ("b", "a", ()),
                ("c", "d", ("s",)),
                ("d", "c", ()),
            ]
        )
        assert graph.find_labeled_cycle(("m", "s")) is None

    def test_self_loop_counts_as_cycle(self):
        graph = graph_of([("a", "a", ("m", "s"))])
        assert graph.find_labeled_cycle(("m", "s")) is not None

    def test_label_on_entry_path_does_not_count(self):
        # m only on the edge INTO the cycle, not inside it.
        graph = graph_of(
            [("x", "a", ("m",)), ("a", "b", ("s",)), ("b", "a", ())]
        )
        assert graph.find_labeled_cycle(("m", "s")) is None

    def test_forbidden_label_excludes_edge(self):
        graph = graph_of(
            [("a", "b", ("m", "i")), ("b", "a", ("s",))]
        )
        # The only m-edge is also an i-edge; i is forbidden.
        assert graph.find_labeled_cycle(("m", "s"), forbidden=("i",)) is None

    def test_forbidden_label_spares_other_cycles(self):
        graph = graph_of(
            [
                ("a", "b", ("m", "i")),
                ("b", "a", ("s",)),
                ("c", "d", ("m",)),
                ("d", "c", ("s",)),
            ]
        )
        witness = graph.find_labeled_cycle(("m", "s"), forbidden=("i",))
        assert witness is not None
        assert {e.source for e in witness} <= {"c", "d"}

    def test_empty_required_means_any_cycle(self):
        graph = graph_of([("a", "b", ()), ("b", "a", ())])
        assert graph.find_labeled_cycle(()) is not None

    def test_witness_is_a_closed_walk(self):
        graph = graph_of(
            [
                ("a", "b", ("m",)),
                ("b", "c", ()),
                ("c", "a", ("s",)),
            ]
        )
        witness = graph.find_labeled_cycle(("m", "s"))
        assert witness is not None
        for first, second in zip(witness, witness[1:]):
            assert first.target == second.source
        assert witness[-1].target == witness[0].source

    def test_has_labeled_cycle_shorthand(self):
        graph = graph_of([("a", "a", ("m",))])
        assert graph.has_labeled_cycle(("m",))
        assert not graph.has_labeled_cycle(("s",))
