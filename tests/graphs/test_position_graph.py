"""Tests for repro.graphs.position_graph against Definition 4.

The Figure 1 / Figure 2 structural assertions live here; the
integration tests assert the downstream SWR verdicts.
"""

import pytest

from repro.graphs.position_graph import build_position_graph
from repro.lang.atoms import Position
from repro.lang.errors import NotSupportedError
from repro.lang.parser import parse_program
from repro.workloads.paper import example1, example2


def edge_map(graph):
    return {
        (str(e.source), str(e.target)): set(e.labels) for e in graph.edges
    }


class TestFigure1:
    """The position graph of the paper's Example 1 (Figure 1)."""

    @pytest.fixture
    def graph(self):
        return build_position_graph(example1())

    def test_node_set(self, graph):
        names = {str(p) for p in graph.positions}
        # Figure 1 plus t[1] (Definition 4 point 1(b) literally adds a
        # node for every existential body variable; see EXPERIMENTS.md).
        assert names == {
            "r[ ]", "s[ ]", "t[ ]", "v[ ]", "q0[ ]", "s[2]", "t[1]",
        }

    def test_edges_and_m_labels(self, graph):
        edges = edge_map(graph)
        assert edges[("r[ ]", "s[ ]")] == set()
        assert edges[("r[ ]", "t[ ]")] == {"m"}
        assert edges[("r[ ]", "s[2]")] == set()
        assert edges[("r[ ]", "t[1]")] == {"m"}
        assert edges[("s[ ]", "v[ ]")] == set()
        assert edges[("s[ ]", "q0[ ]")] == {"m"}
        assert edges[("v[ ]", "r[ ]")] == set()
        assert len(edges) == 7

    def test_no_s_edges(self, graph):
        assert graph.s_edges() == ()

    def test_harmless_cycle_exists_but_not_dangerous(self, graph):
        # r[] -> s[] -> v[] -> r[] is a cycle, but with no s-edge it is
        # harmless: Definition 5 only forbids m+s cycles.
        assert graph.graph.find_labeled_cycle(()) is not None
        assert graph.dangerous_cycle() is None

    def test_dead_end_at_existential_head_position(self, graph):
        # s[2] corresponds to R2's existential head variable Y3: no
        # rule head is R-compatible with it, so it has no successors.
        assert graph.graph.successors(Position("s", 2)) == ()


class TestFigure2:
    """The position graph of Example 2 -- the documented failure."""

    @pytest.fixture
    def graph(self):
        return build_position_graph(example2())

    def test_node_set(self, graph):
        names = {str(p) for p in graph.positions}
        assert names == {
            "r[ ]", "r[1]", "r[2]",
            "s[ ]", "s[1]", "s[2]", "s[3]",
            "t[ ]", "t[1]", "t[2]",
        }

    def test_no_s_edges_despite_unbounded_chain(self, graph):
        # The within-atom repetition of Y1 in body(R2) is invisible:
        # "occurring in at least two atoms" never triggers.
        assert graph.s_edges() == ()

    def test_no_dangerous_cycle(self, graph):
        # The criterion (wrongly) passes -- the paper's motivation for
        # the P-node graph.
        assert graph.dangerous_cycle() is None

    def test_m_edges_present(self, graph):
        assert len(graph.m_edges()) > 0

    def test_r2_existential_position_is_dead_end(self, graph):
        # r[2] holds R2's existential head variable Y3.
        assert graph.graph.successors(Position("r", 2)) == ()


class TestConstructionMechanics:
    def test_multi_head_rejected(self):
        rules = parse_program("a(X) -> b(X), c(X).")
        with pytest.raises(NotSupportedError):
            build_position_graph(rules)

    def test_empty_rule_set(self):
        graph = build_position_graph(())
        assert graph.positions == ()
        assert graph.edges == ()

    def test_s_label_point_two_existential_in_two_atoms(self):
        # Y2 occurs in both body atoms and not in the head: every edge
        # of the expansion carries s.
        rules = parse_program("a(X, Y2), b(Y2) -> r(X).")
        graph = build_position_graph(rules)
        assert all("s" in e.labels for e in graph.edges)

    def test_s_label_point_three_traced_variable_split(self):
        # Node r[1] arises from the existential body variable W of the
        # second rule; expanding it against the first rule traces X,
        # which occurs in both body atoms -> point 3 puts s on every
        # edge of that expansion.  The generic node r[ ] traces nothing
        # and its expansion has no split (no existential body variable
        # of rule 1 occurs in two atoms), so its edges carry no s.
        rules = parse_program(
            """
            a(X, Y), b(X) -> r(X).
            r(W), c(W, X) -> p(X).
            """
        )
        graph = build_position_graph(rules)
        from_r1 = [e for e in graph.edges if str(e.source) == "r[1]"]
        from_generic = [e for e in graph.edges if str(e.source) == "r[ ]"]
        assert from_r1 and all("s" in e.labels for e in from_r1)
        assert from_generic and all(
            "s" not in e.labels for e in from_generic
        )

    def test_m_label_is_per_body_atom(self):
        # b misses the frontier variable X; a does not.
        rules = parse_program("a(X), b(Y) -> r(X).")
        graph = build_position_graph(rules)
        edges = edge_map(graph)
        assert edges[("r[ ]", "a[ ]")] == set()
        assert "m" in edges[("r[ ]", "b[ ]")]

    def test_labels_accumulate_across_rules(self):
        # Two rules derive r[] -> a[]: one contributes m, one nothing.
        rules = parse_program(
            """
            a(X), c(Y) -> r(X, Y).
            a(X) -> r(X, Z).
            """
        )
        graph = build_position_graph(rules)
        assert "m" in edge_map(graph)[("r[ ]", "a[ ]")]

    def test_head_constant_position_not_compatible(self):
        # Position r[1] holds a constant in the head: Definition 3(ii)
        # requires a distinguished variable, so no expansion happens.
        rules = parse_program('a(X) -> r("k", X). r(Y, X) -> p(Y).')
        graph = build_position_graph(rules)
        # p's body traces Y into r[1]; r[1] must be a dead end via the
        # first rule (its head has "k" at position 1).
        sources = {str(e.source) for e in graph.edges}
        assert "r[1]" not in sources

    def test_dangerous_cycle_detected(self):
        # A genuine m+s cycle: the recursive rule splits the
        # existential body variable Y2 across both atoms (s) while the
        # r-atom misses the frontier variable V (m) -- the self-loop
        # r[ ] -> r[ ] carries both labels.
        rules = parse_program("r(Y2, X), t(Y2, V) -> r(X, V).")
        graph = build_position_graph(rules)
        witness = graph.dangerous_cycle()
        assert witness is not None
        labels = set().union(*(e.labels for e in witness))
        assert {"m", "s"} <= labels
