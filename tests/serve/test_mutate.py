"""End-to-end tests for the ``POST /v1/mutate`` serving route."""

from repro.api import EngineOptions
from repro.data.database import Database
from repro.lang.parser import parse_database, parse_program
from repro.serve import BackgroundServer, ReproServer, ServeConfig, TenantRegistry

from tests.serve.test_server import _request

PROGRAM = (
    "R1: professor(X) -> teaches(X, Y). "
    "R2: assoc_prof(X) -> professor(X)."
)
DATA = "professor(ada). assoc_prof(bob)."
QUERY = "q(X) :- teaches(X, Y)"


def _server(tmp_path=None, **config_kwargs):
    config = ServeConfig(port=0, **config_kwargs)
    registry = TenantRegistry(
        cache_dir=tmp_path, options=config.effective_options()
    )
    registry.register(
        "default",
        parse_program(PROGRAM),
        Database(parse_database(DATA)),
    )
    return ReproServer(registry, config)


class TestMutateRoute:
    def test_insert_is_visible_to_subsequent_queries(self):
        server = _server()
        with BackgroundServer(server) as (host, port):
            status, _, before = _request(
                host, port, "POST", "/v1/query", {"query": QUERY}
            )
            assert status == 200
            assert len(before["answers"]) == 2

            status, _, payload = _request(
                host,
                port,
                "POST",
                "/v1/mutate",
                {"insert": "assoc_prof(carl)."},
            )
            assert status == 200
            assert payload["tenant"] == "default"
            assert payload["data_size"] == 3
            # No hybrid core on a default-options tenant: the mutation
            # lands in the ABox but nothing is maintained.
            assert payload["insert"] == {"maintained": False}

            status, _, after = _request(
                host, port, "POST", "/v1/query", {"query": QUERY}
            )
            assert status == 200
            assert len(after["answers"]) == 3

    def test_delete_retracts_answers(self):
        server = _server()
        with BackgroundServer(server) as (host, port):
            status, _, payload = _request(
                host,
                port,
                "POST",
                "/v1/mutate",
                {"delete": "professor(ada)."},
            )
            assert status == 200
            assert payload["data_size"] == 1
            status, _, after = _request(
                host, port, "POST", "/v1/query", {"query": QUERY}
            )
            assert status == 200
            assert after["answers"] == [['"bob"']]

    def test_hybrid_tenant_reports_maintenance(self):
        server = _server(options=EngineOptions(hybrid="materialize"))
        with BackgroundServer(server) as (host, port):
            # The first query builds the materialized core.
            status, _, payload = _request(
                host, port, "POST", "/v1/query", {"query": QUERY}
            )
            assert status == 200
            status, _, payload = _request(
                host,
                port,
                "POST",
                "/v1/mutate",
                {"insert": "professor(carl).", "delete": "professor(ada)."},
            )
            assert status == 200
            assert payload["insert"]["maintained"] is True
            assert payload["insert"]["full_rechase"] is False
            assert payload["insert"]["added"] >= 1
            assert payload["delete"]["maintained"] is True
            assert payload["delete"]["removed"] >= 1
            status, _, after = _request(
                host, port, "POST", "/v1/query", {"query": QUERY}
            )
            assert status == 200
            assert len(after["answers"]) == 2

    def test_malformed_payloads_are_400(self):
        server = _server()
        with BackgroundServer(server) as (host, port):
            status, _, payload = _request(
                host, port, "POST", "/v1/mutate", {"tenant": "default"}
            )
            assert status == 400
            assert "error" in payload
            status, _, payload = _request(
                host,
                port,
                "POST",
                "/v1/mutate",
                {"insert": "this is not database text"},
            )
            assert status == 400
            assert "error" in payload

    def test_unknown_tenant_is_400(self):
        server = _server()
        with BackgroundServer(server) as (host, port):
            status, _, payload = _request(
                host,
                port,
                "POST",
                "/v1/mutate",
                {"tenant": "ghost", "insert": "a(c)."},
            )
            assert status == 400
            assert "error" in payload
