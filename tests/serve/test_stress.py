"""Admission-slot accounting under deadline churn.

The contract under test: a request that outruns its deadline while its
work is still queued or running gets its 504 immediately, but the slot
is released *exactly once* -- by the executor-thread done-callback,
never by the timeout path.  Under 16 concurrent clients mixing fast
and deliberately slow queries, the books must balance afterwards:
``admitted == completed + errors`` and ``inflight`` back to 0.  A
double release would drive ``completed + errors`` past ``admitted``;
a leaked slot would leave ``inflight`` stuck above 0 (and eventually
shed everything).
"""

import http.client
import itertools
import json
import threading
import time

from repro.data.database import Database
from repro.lang.parser import parse_database, parse_program
from repro.serve import (
    BackgroundServer,
    ReproServer,
    ServeConfig,
    TenantRegistry,
)

PROGRAM = (
    "R1: professor(X) -> teaches(X, Y). "
    "R2: assoc_prof(X) -> professor(X)."
)
DATA = "professor(ada). assoc_prof(bob)."
QUERY = "q(X) :- teaches(X, Y)"

CLIENTS = 16
REQUESTS_PER_CLIENT = 2


def _request(host, port, payload, timeout=30):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("POST", "/v1/query", body=json.dumps(payload))
        response = conn.getresponse()
        response.read()
        return response.status
    finally:
        conn.close()


class TestDeadlineChurn:
    def test_tickets_release_exactly_once_under_timeout_churn(self, tmp_path):
        config = ServeConfig(
            port=0, workers=2, queue_depth=2, deadline_seconds=0.25
        )
        registry = TenantRegistry(options=config.effective_options())
        registry.register(
            "default", parse_program(PROGRAM), Database(parse_database(DATA))
        )
        server = ReproServer(registry, config)

        # Every other admitted request outruns the deadline on purpose.
        calls = itertools.count()
        counter_guard = threading.Lock()

        def before_execute():
            with counter_guard:
                slow = next(calls) % 2 == 1
            if slow:
                time.sleep(0.6)

        server._before_execute = before_execute

        statuses = []
        statuses_guard = threading.Lock()

        def client():
            for _ in range(REQUESTS_PER_CLIENT):
                try:
                    status = _request(host, port, {"query": QUERY})
                except OSError:
                    status = -1
                with statuses_guard:
                    statuses.append(status)

        with BackgroundServer(server) as (host, port):
            threads = [
                threading.Thread(target=client, name=f"client-{i}")
                for i in range(CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not any(thread.is_alive() for thread in threads)

            # Deadline-exceeded requests already got their 504, but
            # their worker threads may still be finishing; wait for the
            # done-callbacks to drain every slot.
            drain_deadline = time.time() + 30
            while time.time() < drain_deadline:
                if server.admission.inflight == 0:
                    break
                time.sleep(0.02)

            stats = server.admission.stats()

        assert len(statuses) == CLIENTS * REQUESTS_PER_CLIENT
        assert -1 not in statuses, "clients saw transport errors"
        assert set(statuses) <= {200, 429, 504}
        # The churn actually exercised the timeout path.
        assert stats["deadline_exceeded"] > 0
        assert 504 in statuses
        # Exactly-once release: the books balance and nothing leaks.
        assert stats["inflight"] == 0
        assert stats["admitted"] == stats["completed"] + stats["errors"]
        assert stats["admitted"] + stats["shed"] == len(statuses)
