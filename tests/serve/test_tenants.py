"""Tenant isolation: registry lifecycle, LRU, cache eviction."""

import pytest

from repro.api import EngineOptions, RewritingCache
from repro.data.database import Database
from repro.lang.errors import ReproError
from repro.lang.parser import parse_database, parse_program
from repro.serve import TenantRegistry

PROGRAM_A = "R1: professor(X) -> teaches(X, Y)."
PROGRAM_B = "S1: a(X) -> b(X)."
QUERY_A = "q(X) :- teaches(X, Y)"
QUERY_B = "q(X) :- b(X)"


@pytest.fixture
def rules_a():
    return parse_program(PROGRAM_A)


@pytest.fixture
def rules_b():
    return parse_program(PROGRAM_B)


class TestRegistry:
    def test_register_and_answer(self, rules_a):
        with TenantRegistry() as registry:
            registry.register(
                "t1", rules_a, Database(parse_database("professor(ada)."))
            )
            answers = registry.session("t1").answer(QUERY_A)
        assert answers

    def test_unknown_tenant_raises(self):
        with TenantRegistry() as registry:
            with pytest.raises(ReproError, match="unknown tenant"):
                registry.session("ghost")
            with pytest.raises(ReproError, match="unknown tenant"):
                registry.remove("ghost")

    def test_sessions_are_isolated(self, rules_a, rules_b):
        with TenantRegistry() as registry:
            registry.register("a", rules_a)
            registry.register("b", rules_b)
            assert registry.session("a") is not registry.session("b")
            assert (
                registry.session("a").ontology_digest
                != registry.session("b").ontology_digest
            )

    def test_reregister_replaces_session(self, rules_a, rules_b):
        with TenantRegistry() as registry:
            registry.register("t", rules_a)
            first = registry.session("t")
            registry.register("t", rules_b)
            second = registry.session("t")
        assert first is not second
        assert second.ontology == tuple(rules_b)


class TestLru:
    def test_live_sessions_bounded_and_reopened(self, rules_a, rules_b):
        with TenantRegistry(max_live=1) as registry:
            registry.register("a", rules_a)
            registry.register("b", rules_b)
            session_a = registry.session("a")
            registry.session("b")  # evicts a's live session (LRU)
            reopened = registry.session("a")
            assert reopened is not session_a
            assert reopened.ontology == tuple(rules_a)


class TestEviction:
    def test_remove_reclaims_persistent_entries(
        self, rules_a, rules_b, tmp_path
    ):
        options = EngineOptions()
        with TenantRegistry(cache_dir=tmp_path, options=options) as registry:
            registry.register("a", rules_a)
            registry.register("b", rules_b)
            registry.session("a").prepare(QUERY_A).result
            registry.session("b").prepare(QUERY_B).result
            evicted = registry.remove("b")
            assert evicted == 1
        with RewritingCache(tmp_path) as cache:
            assert len(cache) == 1
            (digest, _count) = next(iter(cache.ontologies()))
        from repro.rewriting.store import ontology_digest

        assert digest == ontology_digest(rules_a)

    def test_remove_keeps_shared_ontology_entries(self, rules_a, tmp_path):
        with TenantRegistry(cache_dir=tmp_path) as registry:
            registry.register("x", rules_a)
            registry.register("y", rules_a)  # same ontology, two tenants
            registry.session("x").prepare(QUERY_A).result
            assert registry.remove("x") == 0  # y still needs the entries
        with RewritingCache(tmp_path) as cache:
            assert len(cache) == 1


class TestWarmAll:
    def test_boot_warmup_reaches_steady_state(self, rules_a, tmp_path):
        from repro import obs

        with TenantRegistry(cache_dir=tmp_path) as registry:
            registry.register("t", rules_a)
            registry.session("t").prepare(QUERY_A).result
        # A "restarted server": fresh registry over the same cache dir.
        with obs.capture() as trace:
            with TenantRegistry(cache_dir=tmp_path) as restarted:
                restarted.register("t", rules_a)
                assert restarted.warm_all() == 1
                restarted.session("t").prepare(QUERY_A).result
        assert trace.counter("rewrite.cqs_generated") == 0
        assert trace.counter("engine.disk_hits") == 1
