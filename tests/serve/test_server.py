"""End-to-end serving tests: real sockets, real threads, real shedding."""

import http.client
import json
import threading
import time

import pytest

from repro import obs
from repro.api import EngineOptions
from repro.data.database import Database
from repro.lang.parser import parse_database, parse_program
from repro.serve import (
    BackgroundServer,
    ReproServer,
    ServeConfig,
    TenantRegistry,
)

PROGRAM = (
    "R1: professor(X) -> teaches(X, Y). "
    "R2: assoc_prof(X) -> professor(X)."
)
DATA = "professor(ada). assoc_prof(bob)."
QUERY = "q(X) :- teaches(X, Y)"


def _server(tmp_path=None, **config_kwargs):
    config = ServeConfig(port=0, **config_kwargs)
    registry = TenantRegistry(
        cache_dir=tmp_path, options=config.effective_options()
    )
    registry.register(
        "default",
        parse_program(PROGRAM),
        Database(parse_database(DATA)),
    )
    return ReproServer(registry, config)


def _request(host, port, method, path, payload=None, timeout=30):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body=body)
        response = conn.getresponse()
        raw = response.read()
        return response.status, dict(response.getheaders()), (
            json.loads(raw) if raw else None
        )
    finally:
        conn.close()


class TestRoutes:
    def test_healthz_and_query_and_stats(self):
        server = _server(workers=2, queue_depth=4)
        with BackgroundServer(server) as (host, port):
            status, _, payload = _request(host, port, "GET", "/healthz")
            assert status == 200
            assert payload["tenants"] == ["default"]

            status, _, payload = _request(
                host, port, "POST", "/v1/query", {"query": QUERY}
            )
            assert status == 200
            assert payload["complete"] is True
            assert len(payload["answers"]) == 2

            # SQL and memory backends agree over the wire.
            status, _, sql_payload = _request(
                host,
                port,
                "POST",
                "/v1/query",
                {"query": QUERY, "backend": "sql"},
            )
            assert status == 200
            assert sql_payload["answers"] == payload["answers"]

            status, _, stats = _request(host, port, "GET", "/v1/stats")
            assert status == 200
            assert stats["admission"]["admitted"] == 2
            assert stats["admission"]["shed"] == 0
            assert "default" in stats["tenants"]

    def test_unknown_route_404_and_bad_json_400(self):
        server = _server()
        with BackgroundServer(server) as (host, port):
            status, _, _ = _request(host, port, "GET", "/nope")
            assert status == 404
            conn = http.client.HTTPConnection(host, port, timeout=30)
            try:
                conn.request("POST", "/v1/query", body=b"{nope")
                assert conn.getresponse().status == 400
            finally:
                conn.close()

    def test_malformed_query_is_400_not_500(self):
        server = _server()
        with BackgroundServer(server) as (host, port):
            status, _, payload = _request(
                host, port, "POST", "/v1/query", {"query": "not a query"}
            )
            assert status == 400
            assert "error" in payload

    def test_tenant_registration_and_removal(self, tmp_path):
        server = _server(tmp_path=tmp_path)
        with BackgroundServer(server) as (host, port):
            status, _, payload = _request(
                host,
                port,
                "POST",
                "/v1/tenants",
                {"name": "t2", "program": "S1: a(X) -> b(X).", "data": "a(c)."},
            )
            assert status == 201
            status, _, payload = _request(
                host,
                port,
                "POST",
                "/v1/query",
                {"tenant": "t2", "query": "q(X) :- b(X)"},
            )
            assert status == 200
            assert payload["answers"] == [['"c"']]
            status, _, payload = _request(
                host, port, "DELETE", "/v1/tenants/t2"
            )
            assert status == 200
            status, _, _ = _request(
                host,
                port,
                "POST",
                "/v1/query",
                {"tenant": "t2", "query": "q(X) :- b(X)"},
            )
            assert status == 400


class TestAdmission:
    def test_overload_sheds_with_retry_after(self):
        release = threading.Event()
        server = _server(workers=1, queue_depth=0)
        server._before_execute = release.wait
        with obs.capture() as trace:
            with BackgroundServer(server) as (host, port):
                blocker = threading.Thread(
                    target=_request,
                    args=(host, port, "POST", "/v1/query", {"query": QUERY}),
                )
                blocker.start()
                # Wait until the slot is actually held.
                deadline = time.time() + 10
                while server.admission.inflight == 0:
                    assert time.time() < deadline, "request never admitted"
                    time.sleep(0.01)
                status, headers, payload = _request(
                    host, port, "POST", "/v1/query", {"query": QUERY}
                )
                assert status == 429
                assert int(headers["Retry-After"]) >= 1
                assert "error" in payload
                release.set()
                blocker.join(timeout=30)
        assert trace.counter("serve.shed") == 1
        assert trace.counter("serve.admitted") == 1
        assert trace.counter("serve.completed") == 1

    def test_deadline_exceeded_returns_504(self):
        release = threading.Event()
        server = _server(workers=1, queue_depth=4, deadline_seconds=0.2)
        server._before_execute = release.wait
        with obs.capture() as trace:
            with BackgroundServer(server) as (host, port):
                status, _, payload = _request(
                    host, port, "POST", "/v1/query", {"query": QUERY}
                )
                assert status == 504
                assert payload["deadline_seconds"] == pytest.approx(0.2)
                release.set()
                # The slot is only freed when the worker finishes; wait
                # for the release so the counter assertions are stable.
                deadline = time.time() + 10
                while server.admission.inflight:
                    assert time.time() < deadline, "slot never released"
                    time.sleep(0.01)
        assert trace.counter("serve.deadline_exceeded") == 1
        assert trace.counter("serve.admitted") == 1

    def test_deadline_tightens_the_rewriting_budget(self):
        config = ServeConfig(
            deadline_seconds=1.5,
            options=EngineOptions(),
        )
        assert config.effective_options().budget.max_seconds == 1.5
        # Never loosens an already-tighter budget.
        from repro.rewriting.budget import RewritingBudget

        tight = ServeConfig(
            deadline_seconds=9.0,
            options=EngineOptions(
                budget=RewritingBudget(max_seconds=0.5, strict=False)
            ),
        )
        assert tight.effective_options().budget.max_seconds == 0.5


class TestWarmServing:
    def test_restart_serves_with_zero_rewrites(self, tmp_path):
        server = _server(tmp_path=tmp_path)
        with BackgroundServer(server) as (host, port):
            _request(host, port, "POST", "/v1/query", {"query": QUERY})
        restarted = _server(tmp_path=tmp_path)
        restarted.registry.warm_all()
        with obs.capture() as trace:
            with BackgroundServer(restarted) as (host, port):
                status, _, _ = _request(
                    host, port, "POST", "/v1/query", {"query": QUERY}
                )
                assert status == 200
        assert trace.counter("rewrite.cqs_generated") == 0
