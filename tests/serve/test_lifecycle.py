"""BackgroundServer lifecycle: failed boots must not leak loop threads."""

import pytest

from repro.api import EngineOptions  # noqa: F401 - parity with test_server
from repro.data.database import Database
from repro.lang.parser import parse_database, parse_program
from repro.serve import (
    BackgroundServer,
    ReproServer,
    ServeConfig,
    TenantRegistry,
)

PROGRAM = "R1: professor(X) -> teaches(X, Y)."
DATA = "professor(ada)."


def _server(**config_kwargs):
    config = ServeConfig(port=0, **config_kwargs)
    registry = TenantRegistry(options=config.effective_options())
    registry.register(
        "default", parse_program(PROGRAM), Database(parse_database(DATA))
    )
    return ReproServer(registry, config)


class TestBootFailure:
    def test_start_reraises_boot_error_and_joins_thread(self):
        server = _server()

        async def boom():
            raise RuntimeError("bind exploded")

        server.start = boom
        background = BackgroundServer(server)
        with pytest.raises(RuntimeError) as info:
            background.start()
        assert "bind exploded" in str(info.value)
        assert isinstance(info.value.__cause__, RuntimeError)
        # The loop thread exited (no half-dead daemon left behind) and
        # its loop was closed on the way out.
        assert background._thread is not None
        assert not background._thread.is_alive()
        assert background._loop is None
        server.registry.close()

    def test_stop_after_failed_boot_is_a_noop(self):
        server = _server()

        async def boom():
            raise OSError("address in use")

        server.start = boom
        background = BackgroundServer(server)
        with pytest.raises(RuntimeError):
            background.start()
        background.stop()
        background.stop()
        server.registry.close()


class TestCleanShutdown:
    def test_stop_joins_the_loop_thread(self):
        server = _server()
        background = BackgroundServer(server)
        background.start()
        background.stop()
        assert background._thread is not None
        assert not background._thread.is_alive()
        assert background._loop is None

    def test_stop_is_idempotent(self):
        server = _server()
        with BackgroundServer(server):
            pass
        # __exit__ already stopped it; stopping again must not raise.
        BackgroundServer.stop(BackgroundServer(server))
