"""The hand-rolled HTTP/1.1 codec, exercised without sockets."""

import asyncio
import json

import pytest

from repro.serve.http import (
    HttpError,
    Request,
    encode_response,
    read_request,
)


def _read(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_get_round_trip(self):
        request = _read(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.headers["host"] == "x"
        assert request.body == b""

    def test_post_with_body(self):
        body = json.dumps({"query": "q(X) :- r(X)"}).encode()
        raw = (
            b"POST /v1/query HTTP/1.1\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        request = _read(raw)
        assert request.method == "POST"
        assert request.json() == {"query": "q(X) :- r(X)"}

    def test_clean_eof_returns_none(self):
        assert _read(b"") is None

    def test_malformed_request_line_raises_400(self):
        with pytest.raises(HttpError) as info:
            _read(b"NONSENSE\r\n\r\n")
        assert info.value.status == 400

    def test_negative_content_length_raises_413(self):
        with pytest.raises(HttpError) as info:
            _read(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
        assert info.value.status == 413

    def test_chunked_encoding_rejected(self):
        with pytest.raises(HttpError) as info:
            _read(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert info.value.status == 400

    def test_invalid_json_body_raises_400(self):
        request = Request("POST", "/", body=b"{nope")
        with pytest.raises(HttpError) as info:
            request.json()
        assert info.value.status == 400


class TestKeepAlive:
    def test_default_is_keep_alive(self):
        assert Request("GET", "/").keep_alive

    def test_connection_close_opts_out(self):
        request = Request("GET", "/", headers={"connection": "Close"})
        assert not request.keep_alive


class TestEncodeResponse:
    def test_json_payload(self):
        wire = encode_response(200, {"ok": True})
        head, _, body = wire.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert b"Content-Type: application/json" in head
        assert json.loads(body) == {"ok": True}
        assert f"Content-Length: {len(body)}".encode() in head

    def test_extra_headers_and_close(self):
        wire = encode_response(
            429, None, headers={"Retry-After": "2"}, keep_alive=False
        )
        assert b"429 Too Many Requests" in wire
        assert b"Retry-After: 2" in wire
        assert b"Connection: close" in wire
