"""Admission control: capacity accounting, shedding, counters."""

import threading

import pytest

from repro import obs
from repro.serve.admission import AdmissionController


class TestCapacity:
    def test_admits_up_to_workers_plus_queue(self):
        controller = AdmissionController(workers=2, queue_depth=3)
        tickets = [controller.try_admit() for _ in range(5)]
        assert all(tickets)
        assert controller.try_admit() is None
        tickets[0].release()
        assert controller.try_admit() is not None

    def test_release_is_idempotent(self):
        controller = AdmissionController(workers=1, queue_depth=0)
        ticket = controller.try_admit()
        ticket.release()
        ticket.release()
        assert controller.inflight == 0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(workers=0, queue_depth=1)
        with pytest.raises(ValueError):
            AdmissionController(workers=1, queue_depth=-1)


class TestCounters:
    def test_admitted_shed_completed_errors(self):
        with obs.capture() as trace:
            controller = AdmissionController(workers=1, queue_depth=1)
            first = controller.try_admit()
            second = controller.try_admit()
            assert controller.try_admit() is None
            first.release()
            second.release(error=True)
        assert trace.counter("serve.admitted") == 2
        assert trace.counter("serve.shed") == 1
        assert trace.counter("serve.completed") == 1
        assert trace.counter("serve.errors") == 1

    def test_deadline_counter(self):
        with obs.capture() as trace:
            controller = AdmissionController(workers=1, queue_depth=0)
            controller.record_deadline_exceeded()
        assert trace.counter("serve.deadline_exceeded") == 1
        assert controller.stats()["deadline_exceeded"] == 1

    def test_stats_snapshot(self):
        controller = AdmissionController(workers=2, queue_depth=1)
        ticket = controller.try_admit()
        stats = controller.stats()
        assert stats["capacity"] == 3
        assert stats["inflight"] == 1
        assert stats["admitted"] == 1
        ticket.release()
        assert controller.stats()["inflight"] == 0


class TestThreadSafety:
    def test_concurrent_admission_never_exceeds_capacity(self):
        controller = AdmissionController(workers=4, queue_depth=4)
        barrier = threading.Barrier(16)
        admitted = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            ticket = controller.try_admit()
            if ticket is not None:
                with lock:
                    admitted.append(ticket)

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(admitted) == 8
        assert controller.inflight == 8
        for ticket in admitted:
            ticket.release()
        assert controller.inflight == 0

    def test_retry_after_is_at_least_one_second(self):
        controller = AdmissionController(workers=1, queue_depth=0)
        assert controller.retry_after_seconds() >= 1
