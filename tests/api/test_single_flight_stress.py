"""The single-flight compilation contract, pinned under real races.

The serving layer relies on exactly this: N concurrent requests for
one cold (query, target) must collapse onto ONE compilation.  Two
mechanisms stack to guarantee it -- the engine's inflight locking
(losers wait for the winner's entry, then count as cache hits) and the
:class:`PreparedQuery` handle's own memoization (once any thread has
compiled through a handle, later accesses never reach the engine at
all).  These tests fire real thread herds at both layers and assert
the counter arithmetic exactly.
"""

import threading

import pytest

from repro import obs
from repro.api import EngineOptions, Session
from repro.lang.parser import parse_program, parse_ucq

PROGRAM = (
    "R1: professor(X) -> teaches(X, Y). "
    "R2: assoc_prof(X) -> professor(X). "
    "R3: dean(X) -> professor(X)."
)
QUERY = "q(X) :- teaches(X, Y)"
THREADS = 16


@pytest.fixture
def rules():
    return parse_program(PROGRAM)


def _stampede(threads, action):
    """Run *action* on *threads* threads through a start barrier."""
    barrier = threading.Barrier(threads)
    errors = []

    def runner():
        barrier.wait()
        try:
            action()
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    pool = [threading.Thread(target=runner) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    assert not errors, errors


class TestEngineSingleFlight:
    """Raw engine races: the inflight-event locking's exact arithmetic."""

    @pytest.mark.parametrize("target", ["ucq", "datalog"])
    def test_one_miss_rest_hits(self, rules, target):
        ucq = parse_ucq(QUERY)
        with obs.capture() as trace:
            with Session(rules) as session:
                engine = session.engine
                if target == "datalog":
                    _stampede(THREADS, lambda: engine._rewrite_datalog(ucq))
                else:
                    _stampede(THREADS, lambda: engine._rewrite(ucq))
        # Exactly one miss (the winner compiles); the losers wait on
        # the inflight event, retry the lookup, and count as hits.
        assert trace.counter("engine.cache_misses") == 1
        assert trace.counter("engine.cache_hits") == THREADS - 1

    def test_two_targets_compile_once_each(self, rules):
        ucq = parse_ucq(QUERY)
        with obs.capture() as trace:
            with Session(rules) as session:
                engine = session.engine

                def mixed():
                    engine._rewrite(ucq)
                    engine._rewrite_datalog(ucq)

                _stampede(THREADS, mixed)
        # One compilation per (query, target): 2 misses total, every
        # other lookup across both targets a hit.
        assert trace.counter("engine.cache_misses") == 2
        assert trace.counter("engine.cache_hits") == 2 * THREADS - 2


class TestPreparedHandleSingleFlight:
    """Stampedes through one handle: at most ONE engine lookup total."""

    @pytest.mark.parametrize("target", ["ucq", "datalog"])
    def test_one_compilation_per_cold_query(self, rules, target):
        with obs.capture() as trace:
            with Session(
                rules, options=EngineOptions(target=target)
            ) as session:
                prepared = session.prepare(QUERY)
                if target == "datalog":
                    _stampede(THREADS, lambda: prepared.datalog)
                else:
                    _stampede(THREADS, lambda: prepared.result)
        # However many threads slip past the handle's memoization
        # check, the engine's inflight locking admits exactly one
        # compilation; the rest (0..N-1, schedule-dependent) are hits.
        assert trace.counter("engine.cache_misses") == 1
        assert trace.counter("engine.cache_hits") <= THREADS - 1

    def test_persistent_tier_writes_once(self, rules, tmp_path):
        with obs.capture() as trace:
            with Session(rules, cache_dir=tmp_path) as session:
                prepared = session.prepare(QUERY)
                _stampede(THREADS, lambda: prepared.result)
        assert trace.counter("api.cache.writes") == 1
        assert trace.counter("engine.disk_misses") == 1

    def test_stampede_answers_are_identical(self, rules):
        from repro.data.database import Database
        from repro.lang.parser import parse_database

        data = Database(parse_database("professor(ada). dean(eve)."))
        results = []
        lock = threading.Lock()
        with Session(rules, data) as session:
            prepared = session.prepare(QUERY)

            def answer():
                value = prepared.answer()
                with lock:
                    results.append(value)

            _stampede(THREADS, answer)
        assert len(set(results)) == 1
        assert len(results[0]) == 2
