"""Target-aware caching: keying, warm paths, cross-process stability.

The ``target`` field joined :class:`CacheKey` with the Datalog target:
UCQ and Datalog artifacts for the same (ontology, query, budget) live
under distinct keys in distinct tables, a warm cache serves both
targets with zero fresh rewrites, and ``target="auto"`` resolves to
the same concrete target in every interpreter process.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.api import CacheKey, EngineOptions, RewritingCache, Session
from repro.lang.parser import parse_program, parse_query
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.datalog_target import rewrite_datalog

REPO_ROOT = Path(__file__).resolve().parents[2]

PROGRAM = """
R1: a1(X) -> c1(X).
R2: a2(X) -> c1(X).
R3: b1(X) -> c2(X).
R4: b2(X) -> c2(X).
"""

QUERY = "q(X) :- c1(X), c2(X)"


@pytest.fixture
def rules():
    return parse_program(PROGRAM)


class TestKeying:
    def test_targets_never_collide(self, rules):
        budget = RewritingBudget.default()
        query = parse_query(QUERY)
        ucq_key = CacheKey.of(rules, query, budget)
        datalog_key = CacheKey.of(rules, query, budget, target="datalog")
        assert ucq_key.target == "ucq"
        assert datalog_key.target == "datalog"
        assert ucq_key.combined != datalog_key.combined
        # Same content digests -- only the target discriminates.
        assert ucq_key.ontology_digest == datalog_key.ontology_digest
        assert ucq_key.query_digest == datalog_key.query_digest

    def test_datalog_roundtrip_through_disk(self, rules, tmp_path):
        budget = RewritingBudget.default()
        query = parse_query(QUERY)
        rewriting = rewrite_datalog(query, rules, budget)
        key = CacheKey.of(rules, query, budget, target="datalog")
        with RewritingCache(tmp_path) as cache:
            assert cache.get_datalog(key) is None
            cache.put_datalog(key, rewriting)
            served = cache.get_datalog(key)
            # The UCQ table must not see the entry under the ucq key.
            ucq_key = CacheKey.of(rules, query, budget)
            assert cache.get(ucq_key) is None
        assert served is not None
        assert str(served) == str(rewriting)
        assert served.to_sql() == rewriting.to_sql()

    def test_len_and_eviction_cover_both_tables(self, rules, tmp_path):
        budget = RewritingBudget.default()
        query = parse_query(QUERY)
        with Session(rules, cache_dir=tmp_path) as session:
            session.prepare(QUERY).result
            session.prepare(QUERY, target="datalog").datalog
        with RewritingCache(tmp_path) as cache:
            assert len(cache) == 2
            stored = list(cache.ontologies())
            assert len(stored) == 1
            assert stored[0][1] == 2  # both targets under one ontology
            removed = cache.evict_ontologies(keep=frozenset())
            assert removed == 2
            assert len(cache) == 0


class TestWarmPath:
    def test_warm_cache_serves_both_targets(self, rules, tmp_path):
        with Session(rules, cache_dir=tmp_path) as session:
            session.prepare(QUERY).result
            session.prepare(QUERY, target="datalog").datalog
        with obs.capture() as trace:
            with Session(rules, cache_dir=tmp_path) as session:
                session.prepare(QUERY).result
                session.prepare(QUERY, target="datalog").datalog
        assert trace.counter("engine.disk_hits") == 2
        assert trace.counter("rewrite.cqs_generated") == 0
        assert trace.counter("datalog_target.rules_emitted") == 0

    def test_warm_datalog_answers_match_cold(self, rules, tmp_path):
        from repro.data.database import Database
        from repro.lang.atoms import Atom
        from repro.lang.terms import Constant

        database = Database(
            [
                Atom("a1", (Constant("u"),)),
                Atom("b2", (Constant("u"),)),
                Atom("a2", (Constant("v"),)),
            ]
        )
        with Session(
            rules,
            cache_dir=tmp_path,
            options=EngineOptions(target="datalog"),
        ) as session:
            cold = session.answer(QUERY, database)
        with Session(
            rules,
            cache_dir=tmp_path,
            options=EngineOptions(target="datalog"),
        ) as session:
            warm = session.answer(QUERY, database)
        assert warm == cold == frozenset({(Constant("u"),)})


class TestAutoStability:
    def _resolve_in_subprocess(self, hash_seed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        script = (
            "from repro.lang.parser import parse_program, parse_query\n"
            "from repro.rewriting.engine import FORewritingEngine\n"
            f"rules = parse_program({PROGRAM!r})\n"
            f"query = parse_query({QUERY!r})\n"
            "engine = FORewritingEngine(rules, target='auto')\n"
            "import sys; sys.stdout.write(engine.resolve_target(query))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return result.stdout

    def test_auto_choice_stable_across_processes(self):
        first = self._resolve_in_subprocess("1")
        second = self._resolve_in_subprocess("31337")
        assert first == second
        assert first in ("ucq", "datalog")

    def test_auto_resolution_memoized_and_counted(self, rules):
        from repro.rewriting.engine import FORewritingEngine

        engine = FORewritingEngine(rules, target="auto")
        query = parse_query(QUERY)
        with obs.capture() as trace:
            first = engine.resolve_target(query)
            second = engine.resolve_target(query)
        assert first == second
        selected = trace.counter(f"engine.target_selected.{first}")
        assert selected == 1  # memoized: counted once per resolution
