"""Session / PreparedQuery: compile-once serve-many semantics.

Covers the acceptance criterion of the API redesign: ``answer_many``
over >= 50 generated SWR queries returns answers identical to the
sequential path, and a second (warm-cache) session run skips every
rewrite -- verified through the obs cache counters.
"""

import random

import pytest

from repro import obs
from repro.api import EngineOptions, Session
from repro.data.database import Database
from repro.lang.parser import parse_database, parse_program, parse_query
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.rewriter import rewrite
from repro.workloads.generators import (
    concept_hierarchy,
    generate_database,
    swr_but_not_baselines,
)

PROGRAM = """
R1: s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).
R2: v(Y1, Y2), q0(Y2) -> s(Y1, Y3, Y2).
R3: r(Y1, Y2) -> v(Y1, Y2).
"""

DATA = "v(a, b). q0(b). t(c)."


@pytest.fixture
def rules():
    return parse_program(PROGRAM)


@pytest.fixture
def data():
    return Database(parse_database(DATA))


def _workload():
    """>= 50 distinct atomic queries over a generated SWR ontology."""
    rules = concept_hierarchy(55) + swr_but_not_baselines(2)
    queries = [parse_query(f"q(X) :- c{i}(X)") for i in range(1, 56)]
    queries += [parse_query(f"q(X) :- u{c}(X)") for c in range(2)]
    assert len(queries) >= 50
    facts = generate_database(random.Random(7), rules, facts_per_relation=3)
    return rules, queries, Database(facts)


class TestPrepare:
    def test_prepare_accepts_text_and_objects(self, rules, data):
        with Session(rules, data) as session:
            from_text = session.prepare("q(X) :- r(X, Y)")
            from_object = session.prepare(parse_query("q(X) :- r(X, Y)"))
            assert from_text is from_object

    def test_prepare_shares_handles_up_to_renaming(self, rules):
        with Session(rules) as session:
            a = session.prepare("q(X) :- r(X, Y)")
            b = session.prepare("q(U) :- r(U, V)")
            assert a is b
            assert len(session.prepared_queries()) == 1

    def test_prepared_exposes_plan(self, rules):
        with Session(rules) as session:
            prepared = session.prepare("q(X) :- r(X, Y)")
            assert prepared.complete
            assert len(prepared.ucq) == 3
            assert "SELECT DISTINCT" in prepared.sql
            explain = prepared.explain()
            assert explain["complete"] is True
            assert explain["disjuncts"] == 3

    def test_compilation_happens_once(self, rules, data):
        with Session(rules, data) as session:
            prepared = session.prepare("q(X) :- r(X, Y)")
            prepared.result  # first (and only) compilation
            with obs.capture() as trace:
                prepared.answer()
                prepared.answer(backend="sql")
                session.answer("q(Z) :- r(Z, W)")
            assert not trace.spans("engine.rewrite")

    def test_answers_match_direct_rewriting(self, rules, data):
        query = parse_query("q(X) :- r(X, Y)")
        direct = rewrite(query, rules, RewritingBudget.default())
        with Session(rules, data) as session:
            prepared = session.prepare(query)
            assert prepared.ucq == direct.ucq
            memory = prepared.answer()
            sql = prepared.answer(backend="sql")
            chase = session.answer_chase(query)
            assert memory == sql == chase

    def test_sql_backend_rejects_explicit_database(self, rules, data):
        from repro.lang.errors import ReproError

        with Session(rules, data) as session:
            with pytest.raises(ReproError):
                session.answer("q(X) :- r(X, Y)", data, backend="sql")

    def test_dataless_session_requires_explicit_database(self, rules, data):
        from repro.lang.errors import ReproError

        with Session(rules) as session:
            answers = session.answer("q(X) :- r(X, Y)", data)
            assert answers
            with pytest.raises(ReproError):
                session.answer("q(X) :- r(X, Y)")


class TestAnswerMany:
    def test_batch_matches_sequential(self, tmp_path):
        rules, queries, database = _workload()
        with Session(rules, database) as session:
            sequential = [session.answer(q) for q in queries]
        with Session(rules, database, cache_dir=tmp_path) as session:
            results = session.answer_all(queries, max_workers=4)
        assert len(results) == len(queries)
        for item, expected in zip(results, sequential):
            assert item.ok, item.error
            assert item.answers == expected

    def test_warm_cache_run_skips_all_rewrites(self, tmp_path):
        rules, queries, database = _workload()
        with Session(rules, database, cache_dir=tmp_path) as session:
            baseline = [session.answer(q) for q in queries]
            cold_stats = session.cache_stats()
        assert cold_stats["persistent"]["writes"] == len(queries)

        with Session(rules, database, cache_dir=tmp_path) as session:
            with obs.capture() as trace:
                results = session.answer_all(queries, max_workers=4)
            warm_stats = session.cache_stats()

        assert [item.answers for item in results] == baseline
        # Every compilation was served from disk: no rewriting ran.
        assert trace.counter("engine.disk_hits") == len(queries)
        assert trace.counter("rewrite.cqs_generated") == 0
        assert not trace.spans("rewrite")
        assert warm_stats["persistent"]["hits"] == len(queries)
        assert warm_stats["persistent"]["misses"] == 0

    def test_unordered_streaming_covers_all_indices(self, rules, data):
        queries = ["q(X) :- r(X, Y)", "q(X, Y) :- v(X, Y)", "q() :- t(X)"]
        with Session(rules, data) as session:
            seen = {item.index for item in session.answer_many(queries)}
        assert seen == {0, 1, 2}

    def test_per_query_errors_do_not_kill_the_batch(self, rules, data):
        bad = "q(X) :- "  # parse error, caught per-item
        queries = ["q(X) :- r(X, Y)", bad, "q() :- t(X)"]
        with Session(rules, data) as session:
            results = session.answer_all(queries)
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert results[1].error

    def test_process_pool_matches_thread_pool(self, tmp_path):
        rules, queries, database = _workload()
        queries = queries[:8]
        with Session(rules, database, cache_dir=tmp_path) as session:
            threaded = session.answer_all(queries, max_workers=2)
            forked = session.answer_all(
                queries, max_workers=2, mode="process"
            )
        assert [i.answers for i in threaded] == [i.answers for i in forked]
        assert all(item.ok for item in forked)

    def test_process_pool_applies_mappings(self, rules):
        from repro.lang.parser import parse_atom
        from repro.obda.mappings import MappingAssertion

        source = Database(parse_database("src_v(a, b). src_q(b). src_t(c)."))
        mappings = [
            MappingAssertion(
                (parse_atom("src_v(X, Y)"),), parse_atom("v(X, Y)")
            ),
            MappingAssertion((parse_atom("src_q(X)"),), parse_atom("q0(X)")),
            MappingAssertion((parse_atom("src_t(X)"),), parse_atom("t(X)")),
        ]
        with Session(rules, source, mappings=mappings) as session:
            expected = session.answer("q(X) :- r(X, Y)")
            results = session.answer_all(
                ["q(X) :- r(X, Y)"], max_workers=1, mode="process"
            )
        assert results[0].answers == expected
        assert expected


class TestLifecycle:
    def test_classification_is_cached(self, rules):
        with Session(rules) as session:
            assert session.classification() is session.classification()
            assert session.classification().swr.is_swr

    def test_close_is_idempotent(self, rules, data):
        session = Session(rules, data)
        session.answer("q(X) :- r(X, Y)", backend="sql")
        backend = session.sql_backend()
        session.close()
        session.close()
        assert backend.closed

    def test_cache_stats_without_cache_dir(self, rules):
        with Session(rules) as session:
            session.prepare("q(X) :- r(X, Y)").result
            stats = session.cache_stats()
        assert stats["persistent"] is None
        assert stats["memory"]["misses"] == 1


class TestParallelMinimization:
    def test_minimize_workers_produces_identical_rewriting(self, rules):
        query = "q(X) :- r(X, Y)"
        with Session(rules) as sequential:
            baseline = sequential.prepare(query).result
        with Session(rules, options=EngineOptions(minimize_workers=2)) as threaded:
            assert threaded.prepare(query).result.ucq == baseline.ucq
        with Session(rules, options=EngineOptions(minimize_workers=0)) as auto:
            assert auto.prepare(query).result.ucq == baseline.ucq

    def test_minimize_workers_never_invalidates_cache(self, rules, tmp_path):
        query = "q(X) :- r(X, Y)"
        with Session(rules, cache_dir=tmp_path) as cold:
            cold.prepare(query).result
        # A differently-parallelised session hits the same disk entry:
        # the option cannot change the output, so it is not in the key.
        with obs.capture() as trace:
            with Session(
                rules,
                cache_dir=tmp_path,
                options=EngineOptions(minimize_workers=2),
            ) as warm:
                warm.prepare(query).result
        assert trace.counters().get("engine.disk_hits", 0) == 1


class TestAnalyze:
    def test_analyze_reports_lattice_and_partition(self):
        from repro.workloads.interaction import split_workload

        split_rules, _, _ = split_workload()
        with Session(split_rules) as session:
            report = session.analyze()
            assert not report.terminating
            assert report.separability.proper
            assert len(report.separability.core) == 3

    def test_analyze_is_memoized(self, rules):
        with Session(rules) as session:
            with obs.capture() as trace:
                first = session.analyze()
                second = session.analyze()
            assert first is second
            assert len(trace.spans("session.analyze")) == 1

    def test_analyze_terminating_ontology(self, rules):
        with Session(rules) as session:
            report = session.analyze()
            assert report.terminating
            assert report.level is not None
