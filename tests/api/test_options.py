"""EngineOptions: validation, CLI adapter, deprecation-exactly-once."""

import argparse
import pickle
import warnings

import pytest

import repro.api.options as options_module
from repro.api import EngineOptions, Session
from repro.lang.parser import parse_program
from repro.rewriting.budget import RewritingBudget

PROGRAM = "R1: professor(X) -> teaches(X, Y)."


@pytest.fixture
def rules():
    return parse_program(PROGRAM)


@pytest.fixture
def reset_legacy_warning():
    """Each test sees a fresh once-per-process deprecation latch."""
    previous = options_module._legacy_warned
    options_module._legacy_warned = False
    yield
    options_module._legacy_warned = previous


def _deprecations(action):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        action()
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestValidation:
    def test_defaults(self):
        options = EngineOptions()
        assert options.target == "ucq"
        assert options.minimize_mode == "thread"
        assert options.budget == RewritingBudget.default()

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown rewriting target"):
            EngineOptions(target="prolog")

    def test_unknown_minimize_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown minimize mode"):
            EngineOptions(minimize_mode="fiber")

    def test_non_budget_rejected(self):
        with pytest.raises(TypeError, match="RewritingBudget"):
            EngineOptions(budget=42)

    def test_frozen(self):
        with pytest.raises(Exception):
            EngineOptions().target = "datalog"

    def test_replace(self):
        options = EngineOptions().replace(target="datalog")
        assert options.target == "datalog"
        assert EngineOptions().target == "ucq"

    def test_picklable_for_process_pools(self):
        options = EngineOptions(target="auto", minimize_workers=2)
        assert pickle.loads(pickle.dumps(options)) == options


class TestWithDeadline:
    def test_none_is_identity(self):
        options = EngineOptions()
        assert options.with_deadline(None) is options

    def test_tightens_unlimited_budget(self):
        options = EngineOptions().with_deadline(2.5)
        assert options.budget.max_seconds == 2.5

    def test_never_loosens(self):
        tight = EngineOptions(
            budget=RewritingBudget(max_seconds=0.5, strict=False)
        )
        assert tight.with_deadline(10.0) is tight


class TestFromArgs:
    def test_maps_the_cli_engine_group(self):
        args = argparse.Namespace(
            max_depth=7,
            max_cqs=500,
            max_seconds=1.5,
            minimize_workers=2,
            minimize_mode="process",
            target="datalog",
        )
        options = EngineOptions.from_args(args)
        assert options.budget == RewritingBudget(
            max_depth=7, max_cqs=500, max_seconds=1.5, strict=False
        )
        assert options.minimize_workers == 2
        assert options.minimize_mode == "process"
        assert options.target == "datalog"

    def test_partial_namespace_falls_back_to_defaults(self):
        options = EngineOptions.from_args(argparse.Namespace(max_depth=3))
        assert options.budget.max_depth == 3
        assert options.target == "ucq"
        assert options.minimize_workers is None

    def test_matches_the_real_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["answer", "p.dlp", "q(X) :- r(X)", "d.dlp", "--target", "auto"]
        )
        assert EngineOptions.from_args(args).target == "auto"


class TestLegacyKeywords:
    def test_legacy_keyword_still_works(self, rules, reset_legacy_warning):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with Session(rules, target="datalog") as session:
                assert session.options.target == "datalog"

    def test_legacy_warns_exactly_once_per_process(
        self, rules, reset_legacy_warning
    ):
        def open_twice():
            Session(rules, target="datalog").close()
            Session(rules, prune_empty=True).close()

        caught = _deprecations(open_twice)
        assert len(caught) == 1
        message = str(caught[0].message)
        assert "options=EngineOptions" in message
        assert "docs/api.md" in message

    def test_options_path_never_warns(self, rules):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Session(rules, options=EngineOptions(target="datalog")).close()

    def test_mixing_options_and_legacy_rejected(
        self, rules, reset_legacy_warning
    ):
        with pytest.raises(ValueError, match="not both"):
            Session(rules, options=EngineOptions(), target="datalog")

    def test_unknown_keyword_is_a_type_error(self, rules):
        with pytest.raises(TypeError, match="unexpected keyword"):
            Session(rules, tarrget="datalog")

    def test_none_legacy_values_mean_default(
        self, rules, reset_legacy_warning
    ):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with Session(rules, budget=None, minimize_workers=2) as session:
                assert session.options.budget == RewritingBudget.default()
                assert session.options.minimize_workers == 2
