"""Persistent rewriting cache: keying, invalidation, robustness.

The contract under test: a cache entry is served only for the exact
(ontology, query, budget, engine-version) it was compiled for, and a
broken cache file degrades to recomputation -- never to a wrong answer
or a crash.
"""

import sqlite3

import pytest

from repro import obs
from repro.api import CacheKey, RewritingCache, Session
from repro.api.cache import DEFAULT_CACHE_FILENAME
from repro.lang.parser import parse_program, parse_query
from repro.rewriting.budget import RewritingBudget

PROGRAM = """
R1: s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).
R2: v(Y1, Y2), q0(Y2) -> s(Y1, Y3, Y2).
R3: r(Y1, Y2) -> v(Y1, Y2).
"""

QUERY = "q(X) :- r(X, Y)"


@pytest.fixture
def rules():
    return parse_program(PROGRAM)


def _compile(rules, tmp_path, **session_kwargs):
    """One compilation under a fresh session; returns (ucq, counters)."""
    with obs.capture() as trace:
        with Session(rules, cache_dir=tmp_path, **session_kwargs) as session:
            ucq = session.prepare(QUERY).ucq
    return ucq, trace


class TestWarmPath:
    def test_second_session_hits_disk(self, rules, tmp_path):
        cold_ucq, cold = _compile(rules, tmp_path)
        warm_ucq, warm = _compile(rules, tmp_path)
        assert warm_ucq == cold_ucq
        assert cold.counter("engine.disk_misses") == 1
        assert cold.counter("api.cache.writes") == 1
        assert warm.counter("engine.disk_hits") == 1
        assert warm.counter("rewrite.cqs_generated") == 0

    def test_renamed_query_shares_the_entry(self, rules, tmp_path):
        _compile(rules, tmp_path)
        with Session(rules, cache_dir=tmp_path) as session:
            with obs.capture() as trace:
                session.prepare("q(A) :- r(A, B)").result
        assert trace.counter("engine.disk_hits") == 1


class TestInvalidation:
    def test_ontology_edit_forces_recompile(self, rules, tmp_path):
        _compile(rules, tmp_path)
        edited = parse_program(PROGRAM + "R4: w(Y1) -> t(Y1).")
        _, trace = _compile(edited, tmp_path)
        assert trace.counter("engine.disk_hits") == 0
        assert trace.counter("engine.disk_misses") == 1
        assert trace.counter("rewrite.cqs_generated") > 0
        # Both compilations live side by side in the one file.
        with RewritingCache(tmp_path) as cache:
            assert len(cache) == 2
            assert len(dict(cache.ontologies())) == 2

    def test_budget_change_forces_recompile(self, rules, tmp_path):
        from repro.api import EngineOptions

        _compile(rules, tmp_path)
        _, trace = _compile(
            rules,
            tmp_path,
            options=EngineOptions(
                budget=RewritingBudget(max_depth=7, strict=False)
            ),
        )
        assert trace.counter("engine.disk_hits") == 0
        assert trace.counter("rewrite.cqs_generated") > 0

    def test_engine_version_bump_forces_recompile(
        self, rules, tmp_path, monkeypatch
    ):
        import repro.rewriting.engine as engine_module

        _compile(rules, tmp_path)
        monkeypatch.setattr(engine_module, "ENGINE_VERSION", "test-bump")
        _, trace = _compile(rules, tmp_path)
        assert trace.counter("engine.disk_hits") == 0
        assert trace.counter("rewrite.cqs_generated") > 0

    def test_evict_ontologies_reclaims_stale_entries(self, rules, tmp_path):
        _compile(rules, tmp_path)
        edited = parse_program(PROGRAM + "R4: w(Y1) -> t(Y1).")
        _compile(edited, tmp_path)
        with Session(rules, cache_dir=tmp_path) as session:
            keep = {session.ontology_digest}
            assert session.cache.evict_ontologies(keep) == 1
            assert len(session.cache) == 1


class TestRobustness:
    def test_corrupt_file_degrades_to_recompute(self, rules, tmp_path):
        cold_ucq, _ = _compile(rules, tmp_path)
        path = tmp_path / DEFAULT_CACHE_FILENAME
        path.write_bytes(b"this is not a sqlite database, sorry")
        ucq, trace = _compile(rules, tmp_path)
        assert ucq == cold_ucq
        assert trace.counter("rewrite.cqs_generated") > 0
        # The broken file was quarantined, not deleted, and the fresh
        # cache is immediately usable again.
        assert path.with_suffix(".corrupt").exists()
        _, warm = _compile(rules, tmp_path)
        assert warm.counter("engine.disk_hits") == 1

    def test_torn_entry_is_dropped_not_fatal(self, rules, tmp_path):
        _compile(rules, tmp_path)
        path = tmp_path / DEFAULT_CACHE_FILENAME
        with sqlite3.connect(path) as connection:
            connection.execute("UPDATE rewritings SET ucq = 'not a ) ucq'")
            connection.commit()
        ucq, trace = _compile(rules, tmp_path)
        assert trace.counter("api.cache.errors") == 1
        assert trace.counter("rewrite.cqs_generated") > 0
        # The undecodable row was evicted; the recompile re-stored it.
        _, warm = _compile(rules, tmp_path)
        assert warm.counter("engine.disk_hits") == 1

    def test_unwritable_directory_disables_cache(self, rules, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where the cache dir should be")
        ucq, trace = _compile(rules, blocked / "cache")
        assert ucq  # answering still works, cache is simply off
        assert trace.counter("engine.disk_misses") >= 1

    def test_schema_version_mismatch_resets_the_file(self, rules, tmp_path):
        _compile(rules, tmp_path)
        path = tmp_path / DEFAULT_CACHE_FILENAME
        with sqlite3.connect(path) as connection:
            connection.execute(
                "UPDATE meta SET value = '999' WHERE key = 'schema_version'"
            )
            connection.commit()
        with RewritingCache(tmp_path) as cache:
            assert len(cache) == 0  # dropped, not misread

    def test_get_put_roundtrip_and_stats(self, rules, tmp_path):
        query = parse_query(QUERY)
        budget = RewritingBudget.default()
        from repro.rewriting.rewriter import rewrite

        result = rewrite(query, rules, budget)
        key = CacheKey.of(rules, query, budget)
        with RewritingCache(tmp_path) as cache:
            assert cache.get(key) is None
            cache.put(key, result)
            stored = cache.get(key)
            assert stored is not None
            assert stored.ucq == result.ucq
            assert stored.complete == result.complete
            stats = cache.stats()
        assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)
