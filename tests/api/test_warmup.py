"""Warm-up from the persistent tier, and the cache_stats/close fixes."""

import pytest

from repro import obs
from repro.api import EngineOptions, RewritingCache, Session
from repro.lang.parser import parse_program
from repro.rewriting.budget import RewritingBudget

PROGRAM = (
    "R1: professor(X) -> teaches(X, Y). "
    "R2: assoc_prof(X) -> professor(X)."
)
Q1 = "q(X) :- teaches(X, Y)"
Q2 = "q(X) :- professor(X)"


@pytest.fixture
def rules():
    return parse_program(PROGRAM)


class TestWarmUp:
    def test_warms_every_stored_entry_with_zero_rewrites(
        self, rules, tmp_path
    ):
        with Session(rules, cache_dir=tmp_path) as cold:
            cold.prepare(Q1).result
            cold.prepare(Q2).result
            cold.prepare(Q1, target="datalog").datalog
        with obs.capture() as trace:
            with Session(rules, cache_dir=tmp_path) as warm:
                assert warm.warm_up() == 3
                # Steady state: the warmed queries answer from memory.
                warm.prepare(Q1).result
                warm.prepare(Q2).result
        assert trace.counter("rewrite.cqs_generated") == 0
        assert trace.counter("engine.disk_hits") == 3

    def test_limit_caps_the_warmed_entries(self, rules, tmp_path):
        with Session(rules, cache_dir=tmp_path) as cold:
            cold.prepare(Q1).result
            cold.prepare(Q2).result
        with Session(rules, cache_dir=tmp_path) as warm:
            assert warm.warm_up(limit=1) == 1

    def test_noop_without_persistent_cache(self, rules):
        with Session(rules) as session:
            assert session.warm_up() == 0

    def test_other_ontologies_and_budgets_not_warmed(self, rules, tmp_path):
        other = parse_program("S1: a(X) -> b(X).")
        with Session(other, cache_dir=tmp_path) as foreign:
            foreign.prepare("q(X) :- b(X)").result
        tight = EngineOptions(
            budget=RewritingBudget(max_depth=3, strict=False)
        )
        with Session(rules, cache_dir=tmp_path, options=tight) as budgeted:
            budgeted.prepare(Q1).result
        # Same ontology, default budget: nothing stored for this context.
        with Session(rules, cache_dir=tmp_path) as session:
            assert session.warm_up() == 0

    def test_stored_queries_survive_empty_text_rows(self, rules, tmp_path):
        # Pre-v3 rows (no query text) are served for lookups but are
        # not enumerable; warm-up must skip them, not crash.
        with Session(rules, cache_dir=tmp_path) as cold:
            cold.prepare(Q1).result
        import sqlite3

        with sqlite3.connect(tmp_path / "rewritings.sqlite") as connection:
            connection.execute("UPDATE rewritings SET query_text = ''")
        with Session(rules, cache_dir=tmp_path) as warm:
            assert warm.warm_up() == 0


class TestCacheStatsBothTables:
    def test_memory_and_persistent_report_both_targets(
        self, rules, tmp_path
    ):
        with Session(rules, cache_dir=tmp_path) as session:
            session.prepare(Q1).result
            session.prepare(Q2).result
            session.prepare(Q1, target="datalog").datalog
            stats = session.cache_stats()
        assert stats["memory"]["ucq_entries"] == 2
        assert stats["memory"]["datalog_entries"] == 1
        assert stats["memory"]["size"] == 3
        persistent = stats["persistent"]
        assert persistent["ucq_entries"] == 2
        assert persistent["datalog_entries"] == 1
        assert persistent["entries"] == 3

    def test_counts_never_raise_on_closed_cache(self, tmp_path):
        cache = RewritingCache(tmp_path)
        cache.close()
        assert cache.counts() == {"ucq": 0, "datalog": 0, "cores": 0}
        assert cache.stored_queries() == []


class TestCloseIdempotence:
    def test_close_tolerates_externally_closed_backend(self, rules):
        from repro.data.database import Database
        from repro.lang.parser import parse_database

        data = Database(parse_database("professor(ada)."))
        session = Session(rules, data)
        backend = session.sql_backend()
        backend.close()  # someone else released it first
        session.close()  # must not raise
        assert backend.closed

    def test_double_close_is_a_noop(self, rules):
        session = Session(rules)
        session.close()
        session.close()
