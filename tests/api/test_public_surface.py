"""The public API surface, pinned.

``repro.api.__all__`` is a compatibility contract: additions are fine
(update the snapshot deliberately), removals and renames are breaking
changes this test makes loud.  The legacy entry points must keep
working but must say they are legacy.
"""

import warnings

import pytest

import repro
import repro.api
from repro.data.database import Database
from repro.lang.parser import parse_database, parse_program, parse_query

PROGRAM = "R1: professor(X) -> teaches(X, Y)."
DATA = "professor(ada)."

API_SURFACE = [
    "BatchResult",
    "CACHE_SCHEMA_VERSION",
    "CacheKey",
    "CacheStats",
    "PreparedQuery",
    "RewritingCache",
    "Session",
    "resolve_workers",
]


def test_api_all_snapshot():
    assert list(repro.api.__all__) == API_SURFACE


def test_api_all_resolves():
    for name in repro.api.__all__:
        assert getattr(repro.api, name) is not None


def test_top_level_reexports():
    for name in ("Session", "PreparedQuery", "RewritingCache", "BatchResult"):
        assert getattr(repro, name) is getattr(repro.api, name)
        assert name in repro.__all__


class TestDeprecatedShims:
    def test_obdasystem_warns_and_still_answers(self):
        rules = parse_program(PROGRAM)
        data = Database(parse_database(DATA))
        with pytest.warns(DeprecationWarning, match="Session"):
            system = repro.OBDASystem(rules, data)
        with system:
            answers = system.certain_answers(
                parse_query("q(X) :- teaches(X, Y)")
            )
        assert answers

    def test_obdasystem_matches_session(self):
        rules = parse_program(PROGRAM)
        data = Database(parse_database(DATA))
        query = parse_query("q(X) :- teaches(X, Y)")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with repro.OBDASystem(rules, data) as system:
                legacy = system.certain_answers(query)
        with repro.Session(rules, data) as session:
            modern = session.answer(query)
        assert legacy == modern

    def test_engine_rewrite_warns(self):
        engine = repro.FORewritingEngine(parse_program(PROGRAM))
        with pytest.warns(DeprecationWarning, match="Session.prepare"):
            result = engine.rewrite(parse_query("q(X) :- teaches(X, Y)"))
        assert result.complete

    def test_engine_answer_warns(self):
        engine = repro.FORewritingEngine(parse_program(PROGRAM))
        data = Database(parse_database(DATA))
        with pytest.warns(DeprecationWarning):
            answers = engine.answer(
                parse_query("q(X) :- teaches(X, Y)"), data
            )
        assert answers

    def test_session_itself_never_warns(self):
        rules = parse_program(PROGRAM)
        data = Database(parse_database(DATA))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with repro.Session(rules, data) as session:
                session.answer("q(X) :- teaches(X, Y)")
                session.sql_for("q(X) :- teaches(X, Y)")
