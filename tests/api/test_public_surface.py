"""The public API surface, pinned.

``repro.api.__all__`` is a compatibility contract: additions are fine
(update the snapshot deliberately), removals and renames are breaking
changes this test makes loud.  The legacy entry points must keep
working but must say they are legacy.
"""

import warnings

import pytest

import repro
import repro.api
from repro.data.database import Database
from repro.lang.parser import parse_database, parse_program, parse_query

PROGRAM = "R1: professor(X) -> teaches(X, Y)."
DATA = "professor(ada)."

API_SURFACE = [
    "BatchResult",
    "CACHE_SCHEMA_VERSION",
    "CacheKey",
    "CacheStats",
    "EngineOptions",
    "PreparedQuery",
    "RewritingCache",
    "Session",
    "resolve_workers",
]


def test_api_all_snapshot():
    assert list(repro.api.__all__) == API_SURFACE


def test_api_all_resolves():
    for name in repro.api.__all__:
        assert getattr(repro.api, name) is not None


def test_top_level_reexports():
    for name in ("Session", "PreparedQuery", "RewritingCache", "BatchResult"):
        assert getattr(repro, name) is getattr(repro.api, name)
        assert name in repro.__all__


class TestDeprecatedShims:
    def test_obdasystem_warns_and_still_answers(self):
        rules = parse_program(PROGRAM)
        data = Database(parse_database(DATA))
        with pytest.warns(DeprecationWarning, match="Session"):
            system = repro.OBDASystem(rules, data)
        with system:
            answers = system.certain_answers(
                parse_query("q(X) :- teaches(X, Y)")
            )
        assert answers

    def test_obdasystem_matches_session(self):
        rules = parse_program(PROGRAM)
        data = Database(parse_database(DATA))
        query = parse_query("q(X) :- teaches(X, Y)")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with repro.OBDASystem(rules, data) as system:
                legacy = system.certain_answers(query)
        with repro.Session(rules, data) as session:
            modern = session.answer(query)
        assert legacy == modern

    def test_engine_rewrite_warns(self):
        engine = repro.FORewritingEngine(parse_program(PROGRAM))
        with pytest.warns(DeprecationWarning, match="Session.prepare"):
            result = engine.rewrite(parse_query("q(X) :- teaches(X, Y)"))
        assert result.complete

    def test_engine_answer_warns(self):
        engine = repro.FORewritingEngine(parse_program(PROGRAM))
        data = Database(parse_database(DATA))
        with pytest.warns(DeprecationWarning):
            answers = engine.answer(
                parse_query("q(X) :- teaches(X, Y)"), data
            )
        assert answers

    def test_session_itself_never_warns(self):
        rules = parse_program(PROGRAM)
        data = Database(parse_database(DATA))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with repro.Session(rules, data) as session:
                session.answer("q(X) :- teaches(X, Y)")
                session.sql_for("q(X) :- teaches(X, Y)")


class TestDeprecationExactlyOnce:
    """Each deprecated call emits exactly one DeprecationWarning.

    Doubled (or swallowed) warnings mean a shim calls another shim, or
    a wrong ``stacklevel`` re-attributes the warning; both regress the
    migration experience, so the count is pinned.
    """

    @staticmethod
    def _deprecations(action):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            action()
        return [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def _backend(self):
        from repro.data.sql import SQLiteBackend
        from repro.lang.signature import Signature

        data = Database(parse_database(DATA))
        signature = Signature(dict(data.signature))
        for rule in parse_program(PROGRAM):
            signature.observe_tgd(rule)
        backend = SQLiteBackend(signature)
        backend.load(data.facts())
        return backend

    def test_obdasystem_constructor_warns_once(self):
        rules = parse_program(PROGRAM)
        data = Database(parse_database(DATA))
        caught = self._deprecations(lambda: repro.OBDASystem(rules, data))
        assert len(caught) == 1

    def test_engine_rewrite_warns_once(self):
        engine = repro.FORewritingEngine(parse_program(PROGRAM))
        query = parse_query("q(X) :- teaches(X, Y)")
        caught = self._deprecations(lambda: engine.rewrite(query))
        assert len(caught) == 1

    def test_engine_answer_warns_once(self):
        engine = repro.FORewritingEngine(parse_program(PROGRAM))
        data = Database(parse_database(DATA))
        query = parse_query("q(X) :- teaches(X, Y)")
        caught = self._deprecations(lambda: engine.answer(query, data))
        assert len(caught) == 1

    def test_engine_answer_sql_warns_once(self):
        engine = repro.FORewritingEngine(parse_program(PROGRAM))
        query = parse_query("q(X) :- teaches(X, Y)")
        with self._backend() as backend:
            caught = self._deprecations(
                lambda: engine.answer_sql(query, backend)
            )
        assert len(caught) == 1

    def test_warnings_name_the_replacement(self):
        engine = repro.FORewritingEngine(parse_program(PROGRAM))
        query = parse_query("q(X) :- teaches(X, Y)")
        (warning,) = self._deprecations(lambda: engine.rewrite(query))
        assert "Session.prepare" in str(warning.message)
        assert "docs/api.md" in str(warning.message)
