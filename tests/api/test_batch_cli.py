"""The ``repro batch`` subcommand end to end."""

import json

import pytest

from repro import cli

PROGRAM = """
R1: s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).
R2: v(Y1, Y2), q0(Y2) -> s(Y1, Y3, Y2).
R3: r(Y1, Y2) -> v(Y1, Y2).
"""

QUERIES = """
# three queries, one comment, one blank line

q(X) :- r(X, Y)
q(X, Y) :- v(X, Y)
q() :- s(X, Y, Z)
"""

DATA = "v(a, b). q0(b). t(c)."


@pytest.fixture
def files(tmp_path):
    program = tmp_path / "program.dlp"
    queries = tmp_path / "queries.txt"
    data = tmp_path / "facts.txt"
    program.write_text(PROGRAM)
    queries.write_text(QUERIES)
    data.write_text(DATA)
    return program, queries, data


def test_batch_text_output(files, capsys):
    program, queries, data = files
    code = cli.main(
        ["batch", str(program), str(queries), str(data), "--ordered"]
    )
    captured = capsys.readouterr()
    assert code == 0
    lines = captured.out.strip().splitlines()
    assert len(lines) == 3
    assert lines[0].startswith("[1/3] q(X) :- r(X, Y)")
    assert "answers=1" in lines[0]
    assert "batch: 3 queries" in captured.err
    assert "0 failed, 0 incomplete" in captured.err


def test_batch_json_output(files, capsys):
    program, queries, data = files
    code = cli.main(
        ["batch", str(program), str(queries), str(data), "--json", "--ordered"]
    )
    captured = capsys.readouterr()
    assert code == 0
    rows = [json.loads(line) for line in captured.out.strip().splitlines()]
    assert [row["index"] for row in rows] == [0, 1, 2]
    assert all(row["error"] is None for row in rows)
    assert rows[1]["answers"] == [['"a"', '"b"']]


def test_batch_compile_only_without_data(files, capsys):
    program, queries, _ = files
    code = cli.main(["batch", str(program), str(queries), "--ordered"])
    captured = capsys.readouterr()
    assert code == 0
    assert "compiled disjuncts=" in captured.out
    assert "answers=" not in captured.out


def test_batch_warm_cache_across_invocations(files, tmp_path, capsys):
    program, queries, data = files
    cache_dir = tmp_path / "cache"
    argv = [
        "--cache-dir",
        str(cache_dir),
        "batch",
        str(program),
        str(queries),
        str(data),
    ]
    assert cli.main(argv) == 0
    capsys.readouterr()
    assert cli.main(argv) == 0
    captured = capsys.readouterr()
    # Second invocation served every compilation from the cache file.
    assert "persistent cache 3h/0m (3 entries)" in captured.err


def test_batch_failed_query_exits_one(files, capsys):
    program, queries, data = files
    queries.write_text("q(X) :- r(X, Y)\nq(X) :- \n")
    code = cli.main(["batch", str(program), str(queries), str(data), "--ordered"])
    captured = capsys.readouterr()
    assert code == 1
    assert "error:" in captured.out
    assert "1 failed" in captured.err


def test_batch_incomplete_rewriting_exits_three(files, capsys):
    program, queries, data = files
    code = cli.main(
        [
            "batch",
            str(program),
            str(queries),
            str(data),
            "--max-depth",
            "1",
            "--max-cqs",
            "1",
        ]
    )
    captured = capsys.readouterr()
    assert code == 3
    assert "[incomplete]" in captured.out


def test_batch_rejects_ill_formed_program(files, capsys):
    program, queries, data = files
    program.write_text("R1: r(X, Y) -> r(X).\n")  # arity clash
    code = cli.main(["batch", str(program), str(queries), str(data)])
    assert code == 2


def test_batch_empty_query_file_is_an_input_error(files, capsys):
    program, queries, data = files
    queries.write_text("# only comments\n")
    code = cli.main(["batch", str(program), str(queries), str(data)])
    captured = capsys.readouterr()
    assert code == 2
    assert "no queries" in captured.err


def test_batch_process_mode(files, capsys):
    program, queries, data = files
    code = cli.main(
        [
            "batch",
            str(program),
            str(queries),
            str(data),
            "--mode",
            "process",
            "--workers",
            "2",
            "--ordered",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "2 process worker(s)" in captured.err


def test_batch_target_datalog_same_answers(files, capsys):
    program, queries, data = files
    base = ["batch", str(program), str(queries), str(data), "--json", "--ordered"]
    assert cli.main(base) == 0
    default_rows = [
        json.loads(line)
        for line in capsys.readouterr().out.strip().splitlines()
    ]
    assert cli.main(base + ["--target", "datalog"]) == 0
    datalog_rows = [
        json.loads(line)
        for line in capsys.readouterr().out.strip().splitlines()
    ]
    assert [row["answers"] for row in datalog_rows] == [
        row["answers"] for row in default_rows
    ]


def test_batch_target_flag_in_process_mode(files, capsys):
    program, queries, data = files
    code = cli.main(
        [
            "batch",
            str(program),
            str(queries),
            str(data),
            "--ordered",
            "--target",
            "datalog",
            "--mode",
            "process",
            "--workers",
            "2",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "0 failed" in captured.err
