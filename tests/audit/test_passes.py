"""Positive and negative fixtures for every RL300--RL312 audit pass."""

import textwrap

from repro.audit.engine import AuditConfig, audit_files
from repro.audit.model import AuditFile

from repro.lint.diagnostics import Severity


def report(source, path="x.py", **config_kwargs):
    file = AuditFile(path, textwrap.dedent(source))
    config = AuditConfig(**config_kwargs) if config_kwargs else None
    return audit_files([file], config)


def codes(source, **config_kwargs):
    return [d.code for d in report(source, **config_kwargs)]


class TestLockOrderRL300:
    def test_self_deadlock_on_nonreentrant_lock_is_error(self):
        rep = report(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()

                def work(self):
                    with self._lock:
                        with self._lock:
                            pass
            """
        )
        (finding,) = [d for d in rep if d.code == "RL300"]
        assert finding.severity is Severity.ERROR
        assert "self-deadlock" in finding.message

    def test_reentrant_lock_reacquire_is_fine(self):
        assert "RL300" not in codes(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.RLock()

                def work(self):
                    with self._lock:
                        with self._lock:
                            pass
            """
        )

    def test_inverted_order_across_methods_is_cycle(self):
        rep = report(
            """
            import threading

            class C:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._b:
                        with self._a:
                            pass
            """
        )
        (finding,) = [d for d in rep if d.code == "RL300"]
        assert finding.severity is Severity.WARNING
        assert "C._a" in finding.message and "C._b" in finding.message
        # Witness notes name both edges with their acquisition sites.
        assert len(finding.notes) == 2
        assert all("x.py:" in note for note in finding.notes)

    def test_consistent_order_is_clean(self):
        assert "RL300" not in codes(
            """
            import threading

            class C:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._a:
                        with self._b:
                            pass
            """
        )

    def test_callee_acquisition_counts_one_level(self):
        rep = report(
            """
            import threading

            class C:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def outer(self):
                    with self._a:
                        self.inner()

                def inner(self):
                    with self._b:
                        pass

                def inverted(self):
                    with self._b:
                        with self._a:
                            pass
            """
        )
        assert any(d.code == "RL300" for d in rep)


class TestManualAcquireRL301:
    def test_acquire_without_finally_release(self):
        assert "RL301" in codes(
            """
            import threading

            GUARD = threading.Lock()

            def work():
                GUARD.acquire()
                do_things()
                GUARD.release()
            """
        )

    def test_finally_guarded_release_is_fine(self):
        assert "RL301" not in codes(
            """
            import threading

            GUARD = threading.Lock()

            def work():
                GUARD.acquire()
                try:
                    do_things()
                finally:
                    GUARD.release()
            """
        )


class TestUnguardedWriteRL302:
    def test_mixed_guarded_and_unguarded_write(self):
        rep = report(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def reset(self):
                    self._count = 0
            """
        )
        (finding,) = [d for d in rep if d.code == "RL302"]
        assert "Counter._count" in finding.message
        assert "reset" in finding.message

    def test_all_writes_guarded_is_clean(self):
        assert "RL302" not in codes(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def reset(self):
                    with self._lock:
                        self._count = 0
            """
        )

    def test_init_writes_do_not_count_as_unguarded(self):
        # __init__ happens-before publication; only post-construction
        # unguarded writers race.
        assert "RL302" not in codes(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1
            """
        )


class TestSleepInAsyncRL303:
    def test_time_sleep_in_coroutine(self):
        assert "RL303" in codes(
            """
            import time

            async def handler():
                time.sleep(0.1)
            """
        )

    def test_from_import_is_resolved(self):
        assert "RL303" in codes(
            """
            from time import sleep

            async def handler():
                sleep(0.1)
            """
        )

    def test_asyncio_sleep_is_fine(self):
        assert "RL303" not in codes(
            """
            import asyncio

            async def handler():
                await asyncio.sleep(0.1)
            """
        )

    def test_nested_sync_def_is_executor_work(self):
        assert "RL303" not in codes(
            """
            import time

            async def handler(loop):
                def blocking():
                    time.sleep(0.1)
                await loop.run_in_executor(None, blocking)
            """
        )


class TestBlockingDbRL304:
    def test_sqlite_connect_and_execute_in_coroutine(self):
        found = codes(
            """
            import sqlite3

            async def handler():
                connection = sqlite3.connect("cache.sqlite")
                connection.execute("SELECT 1")
            """
        )
        assert found.count("RL304") == 2

    def test_compile_entry_points_flagged(self):
        assert "RL304" in codes(
            """
            async def handler(session, query):
                prepared = session.prepare(query)
            """
        )

    def test_sync_function_is_out_of_scope(self):
        assert "RL304" not in codes(
            """
            import sqlite3

            def worker():
                sqlite3.connect("cache.sqlite").execute("SELECT 1")
            """
        )


class TestBlockingIoRL305:
    def test_open_and_read_text_in_coroutine(self):
        found = codes(
            """
            async def handler(path):
                with open(path) as handle:
                    pass
                return path.read_text()
            """
        )
        assert found.count("RL305") == 2

    def test_subprocess_in_coroutine(self):
        assert "RL305" in codes(
            """
            import subprocess

            async def handler():
                subprocess.run(["ls"])
            """
        )

    def test_sync_io_is_out_of_scope(self):
        assert "RL305" not in codes(
            """
            def loader(path):
                return path.read_text()
            """
        )


class TestSyncLockInAsyncRL306:
    def test_with_threading_lock_in_coroutine(self):
        assert "RL306" in codes(
            """
            import threading

            GUARD = threading.Lock()

            async def handler():
                with GUARD:
                    pass
            """
        )

    def test_manual_acquire_in_coroutine(self):
        assert "RL306" in codes(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()

                async def handler(self):
                    self._lock.acquire()
            """
        )

    def test_unknown_context_manager_not_flagged(self):
        assert "RL306" not in codes(
            """
            async def handler(session):
                async with session.lock:
                    pass
            """
        )


class TestFutureDroppedRL307:
    def test_bare_submit_statement(self):
        assert "RL307" in codes(
            """
            def kick(pool, work):
                pool.submit(work)
            """
        )

    def test_ensure_future_statement(self):
        assert "RL307" in codes(
            """
            import asyncio

            def kick(coroutine):
                asyncio.ensure_future(coroutine)
            """
        )

    def test_kept_future_is_fine(self):
        assert "RL307" not in codes(
            """
            def kick(pool, work):
                future = pool.submit(work)
                return future
            """
        )


class TestDoneCallbackRL308:
    def test_callback_ignoring_outcome(self):
        assert "RL308" in codes(
            """
            def wire(future, log):
                future.add_done_callback(lambda f: log("done"))
            """
        )

    def test_callback_consulting_exception_is_fine(self):
        assert "RL308" not in codes(
            """
            def wire(future, ticket):
                future.add_done_callback(
                    lambda f: ticket.release(error=f.exception() is not None)
                )
            """
        )

    def test_module_level_callback_resolved(self):
        assert "RL308" in codes(
            """
            def on_done(future):
                print("finished")

            def wire(future):
                future.add_done_callback(on_done)
            """
        )

    def test_unresolvable_callback_not_flagged(self):
        assert "RL308" not in codes(
            """
            def wire(future, handler):
                future.add_done_callback(handler)
            """
        )


class TestSpawnUnpicklableRL309:
    def test_lambda_submitted_to_process_pool(self):
        assert "RL309" in codes(
            """
            from concurrent.futures import ProcessPoolExecutor

            def go():
                pool = ProcessPoolExecutor()
                pool.submit(lambda: 1)
            """
        )

    def test_initargs_capturing_self(self):
        assert "RL309" in codes(
            """
            from concurrent.futures import ProcessPoolExecutor

            class Runner:
                def go(self):
                    pool = ProcessPoolExecutor(
                        initializer=setup, initargs=(self,)
                    )
            """
        )

    def test_module_level_function_is_fine(self):
        assert "RL309" not in codes(
            """
            from concurrent.futures import ProcessPoolExecutor

            def work(item):
                return item

            def go(items):
                pool = ProcessPoolExecutor(initializer=work)
                for item in items:
                    future = pool.submit(work, item)
            """
        )

    def test_thread_pool_is_out_of_scope(self):
        # Threads share memory: lambdas and bound methods are fine.
        assert "RL309" not in codes(
            """
            from concurrent.futures import ThreadPoolExecutor

            def go():
                pool = ThreadPoolExecutor()
                future = pool.submit(lambda: 1)
                return future
            """
        )


class TestLoopNotClosedRL310:
    def test_new_loop_without_close(self):
        assert "RL310" in codes(
            """
            import asyncio

            def run(main):
                loop = asyncio.new_event_loop()
                loop.run_until_complete(main)
            """
        )

    def test_close_in_finally_is_fine(self):
        assert "RL310" not in codes(
            """
            import asyncio

            def run(main):
                loop = asyncio.new_event_loop()
                try:
                    loop.run_until_complete(main)
                finally:
                    loop.close()
            """
        )


class TestRunForeverNoJoinRL311:
    def test_run_forever_without_join_path(self):
        assert "RL311" in codes(
            """
            class Server:
                def run(self, loop):
                    loop.run_forever()
            """
        )

    def test_join_anywhere_in_class_is_fine(self):
        assert "RL311" not in codes(
            """
            class Server:
                def run(self, loop):
                    loop.run_forever()

                def stop(self):
                    self._thread.join(timeout=30)
            """
        )


class TestUnboundedWaitRL312:
    def test_result_without_timeout_is_info(self):
        rep = report(
            """
            def wait_on(future):
                return future.result()
            """
        )
        (finding,) = [d for d in rep if d.code == "RL312"]
        assert finding.severity is Severity.INFO

    def test_info_does_not_gate_strict(self):
        rep = report(
            """
            def wait_on(future):
                return future.result()
            """
        )
        assert rep.exit_code(strict=True) == 0

    def test_timeout_is_fine(self):
        assert "RL312" not in codes(
            """
            def wait_on(future):
                return future.result(timeout=30)
            """
        )

    def test_non_concurrency_receiver_ignored(self):
        assert "RL312" not in codes(
            """
            def fetch(connection):
                return connection.result()
            """
        )
