"""Audit driver behavior: suppressions, parse errors, config, ordering."""

import textwrap

from repro.audit import (
    AUDIT_REGISTRY,
    AuditConfig,
    all_audit_codes,
    audit_code_names,
    audit_files,
    audit_paths,
)
from repro.audit.model import AuditFile

from repro.lint.diagnostics import Severity

SLEEPY = """
import time

async def handler():
    time.sleep(0.1)
"""


def file_of(source, path="x.py"):
    return AuditFile(path, textwrap.dedent(source))


class TestRegistry:
    def test_at_least_ten_distinct_passes(self):
        assert len({spec.code for spec in AUDIT_REGISTRY}) >= 10

    def test_codes_are_contiguous_rl3xx(self):
        assert all_audit_codes() == tuple(
            f"RL{n}" for n in range(300, 315)
        )

    def test_names_cover_every_code(self):
        names = audit_code_names()
        assert set(names) == set(all_audit_codes())
        assert names["RL300"] == "lock-order-cycle"
        assert names["RL313"] == "unparsable-file"


class TestSuppressions:
    def test_justified_same_line_suppresses(self):
        rep = audit_files(
            [
                file_of(
                    """
                    import time

                    async def handler():
                        time.sleep(0.1)  # audit: ok[RL303] test stub loop
                    """
                )
            ]
        )
        assert not list(rep)

    def test_justified_line_above_suppresses(self):
        rep = audit_files(
            [
                file_of(
                    """
                    import time

                    async def handler():
                        # audit: ok[RL303] test stub loop
                        time.sleep(0.1)
                    """
                )
            ]
        )
        assert not list(rep)

    def test_bare_marker_does_not_suppress_and_is_flagged(self):
        rep = audit_files(
            [
                file_of(
                    """
                    import time

                    async def handler():
                        time.sleep(0.1)  # audit: ok[RL303]
                    """
                )
            ]
        )
        found = [d.code for d in rep]
        assert "RL303" in found
        assert "RL314" in found

    def test_wrong_code_does_not_suppress(self):
        rep = audit_files(
            [
                file_of(
                    """
                    import time

                    async def handler():
                        time.sleep(0.1)  # audit: ok[RL305] not the code
                    """
                )
            ]
        )
        assert "RL303" in [d.code for d in rep]

    def test_multiple_codes_in_one_marker(self):
        rep = audit_files(
            [
                file_of(
                    """
                    import sqlite3

                    async def handler():
                        # audit: ok[RL304,RL305] bootstrap runs pre-loop
                        sqlite3.connect("x").execute("SELECT 1")
                    """
                )
            ]
        )
        assert not [d for d in rep if d.code in ("RL304", "RL305")]


class TestParseErrors:
    def test_syntax_error_becomes_rl313(self):
        rep = audit_files([AuditFile("bad.py", "def broken(:\n")])
        (finding,) = list(rep)
        assert finding.code == "RL313"
        assert finding.severity is Severity.ERROR
        assert finding.file == "bad.py"
        assert rep.exit_code() == 1

    def test_other_files_still_audited(self):
        rep = audit_files(
            [AuditFile("bad.py", "def broken(:\n"), file_of(SLEEPY, "ok.py")]
        )
        assert {d.code for d in rep} == {"RL303", "RL313"}


class TestConfig:
    def test_disabled_code_dropped(self):
        rep = audit_files(
            [file_of(SLEEPY)],
            AuditConfig(disabled=frozenset({"RL303"})),
        )
        assert not list(rep)

    def test_stage_filter_skips_other_stages(self):
        rep = audit_files(
            [file_of(SLEEPY)], AuditConfig(stages=("locks",))
        )
        assert not list(rep)


class TestMultiFileReports:
    def test_diagnostics_sorted_by_file_then_position(self):
        rep = audit_files(
            [file_of(SLEEPY, "zz.py"), file_of(SLEEPY, "aa.py")]
        )
        assert [d.file for d in rep] == ["aa.py", "zz.py"]

    def test_audit_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text(textwrap.dedent(SLEEPY))
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("x = (")
        rep = audit_paths([tmp_path])
        assert [d.code for d in rep] == ["RL303"]
        assert list(rep)[0].file.endswith("mod.py")
