"""The runtime lock-order sanitizer: tracked locks, inversions, wiring."""

import threading

import pytest

from repro.audit import sanitizer
from repro.audit.order import DECLARED_ORDER
from repro.audit.sanitizer import TrackedLock, _State


def tracked(state, site, reentrant=False):
    return TrackedLock(state, site, reentrant)


@pytest.fixture
def state():
    return _State(DECLARED_ORDER)


class TestEdgeRecording:
    def test_nested_acquisition_records_edge(self, state):
        outer = tracked(state, "repro.foo:1")
        inner = tracked(state, "repro.bar:2")
        with outer:
            with inner:
                pass
        assert ("repro.foo:1", "repro.bar:2") in state.edges
        assert not state.violations

    def test_release_pops_held_stack(self, state):
        lock = tracked(state, "repro.foo:1")
        with lock:
            assert state.held_stack()
        assert not state.held_stack()

    def test_reentrant_reacquire_is_not_an_edge(self, state):
        lock = tracked(state, "repro.foo:1", reentrant=True)
        with lock:
            with lock:
                pass
        assert not state.edges
        assert not state.violations


class TestViolations:
    def test_declared_order_inversion(self, state):
        # session (rank 2) held while acquiring tenants (rank 0).
        inner = tracked(state, "repro.api.session:10")
        outer = tracked(state, "repro.serve.tenants:5")
        with inner:
            with outer:
                pass
        (violation,) = state.violations
        assert violation.kind == "declared-order"
        assert violation.held_site == "repro.api.session:10"
        assert violation.acquired_site == "repro.serve.tenants:5"

    def test_declared_order_respected_is_clean(self, state):
        outer = tracked(state, "repro.serve.tenants:5")
        inner = tracked(state, "repro.api.session:10")
        with outer:
            with inner:
                pass
        assert not state.violations

    def test_observed_inversion_between_unranked_locks(self, state):
        # Neither module is in DECLARED_ORDER; the ABBA pattern is
        # still caught as a cycle in the observed graph.
        a = tracked(state, "repro.alpha:1")
        b = tracked(state, "repro.beta:2")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        (violation,) = state.violations
        assert violation.kind == "observed-inversion"

    def test_same_order_twice_is_clean(self, state):
        a = tracked(state, "repro.alpha:1")
        b = tracked(state, "repro.beta:2")
        for _ in range(2):
            with a:
                with b:
                    pass
        assert not state.violations


class TestCrossThread:
    def test_inversion_across_threads_is_detected(self, state):
        a = tracked(state, "repro.alpha:1")
        b = tracked(state, "repro.beta:2")
        with a:
            with b:
                pass

        def inverted():
            with b:
                with a:
                    pass

        worker = threading.Thread(target=inverted)
        worker.start()
        worker.join(timeout=10)
        (violation,) = state.violations
        assert violation.kind == "observed-inversion"


class TestInstall:
    def test_install_wraps_repro_allocations_only(self):
        if sanitizer.installed():
            pytest.skip("sanitizer active for this whole run")
        sanitizer.install()
        try:
            namespace = {"__name__": "repro.fake.module", "threading": threading}
            exec("lock = threading.Lock()", namespace)
            assert isinstance(namespace["lock"], TrackedLock)
            # Allocations outside repro.* stay real stdlib locks.
            assert not isinstance(threading.Lock(), TrackedLock)
        finally:
            sanitizer.reset()
            sanitizer.uninstall()
        assert threading.Lock is sanitizer._REAL_LOCK

    def test_install_is_idempotent(self):
        if sanitizer.installed():
            pytest.skip("sanitizer active for this whole run")
        sanitizer.install()
        try:
            sanitizer.install()
        finally:
            sanitizer.reset()
            sanitizer.uninstall()
        assert not sanitizer.installed()

    def test_violations_flow_through_module_api(self):
        if sanitizer.installed():
            pytest.skip("sanitizer active for this whole run")
        sanitizer.install()
        try:
            namespace = {"__name__": "repro.fake.module", "threading": threading}
            exec(
                "a = threading.Lock()\n"
                "b = threading.Lock()\n",
                namespace,
            )
            a, b = namespace["a"], namespace["b"]
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
            assert sanitizer.violations()
            assert sanitizer.observed_edges()
            assert "1 violation" in sanitizer.report()
            sanitizer.reset()
            assert not sanitizer.violations()
        finally:
            sanitizer.reset()
            sanitizer.uninstall()


class TestEnvFlag:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCK_SANITIZER", raising=False)
        assert not sanitizer.enabled_from_env()

    def test_zero_and_false_are_off(self, monkeypatch):
        for value in ("0", "false", ""):
            monkeypatch.setenv("REPRO_LOCK_SANITIZER", value)
            assert not sanitizer.enabled_from_env()

    def test_one_is_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_SANITIZER", "1")
        assert sanitizer.enabled_from_env()
