"""`repro audit` CLI: exit codes and the shared rendering formats."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

SLEEPY = textwrap.dedent(
    """
    import time

    async def handler():
        time.sleep(0.1)
    """
)

CLEAN = "def add(a, b):\n    return a + b\n"


@pytest.fixture
def sleepy_file(tmp_path):
    path = tmp_path / "sleepy.py"
    path.write_text(SLEEPY)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN)
    return str(path)


class TestExitCodes:
    def test_clean_file_exits_zero(self, clean_file, capsys):
        assert main(["audit", clean_file]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_warnings_exit_zero_without_strict(self, sleepy_file, capsys):
        assert main(["audit", sleepy_file]) == 0
        assert "RL303" in capsys.readouterr().out

    def test_warnings_exit_one_with_strict(self, sleepy_file):
        assert main(["audit", "--strict", sleepy_file]) == 1

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["audit", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_parse_error_exits_one(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        assert main(["audit", str(path)]) == 1

    def test_disable_flag(self, sleepy_file):
        assert (
            main(["audit", "--strict", "--disable", "RL303", sleepy_file])
            == 0
        )


class TestTextFormat:
    def test_location_names_the_finding_file(self, sleepy_file, capsys):
        main(["audit", sleepy_file])
        out = capsys.readouterr().out
        assert f"{sleepy_file}:5:" in out
        assert "warning[RL303]:" in out


class TestJsonFormat:
    def test_diagnostics_carry_file(self, sleepy_file, capsys):
        main(["audit", "--format", "json", sleepy_file])
        doc = json.loads(capsys.readouterr().out)
        (diagnostic,) = doc["diagnostics"]
        assert diagnostic["code"] == "RL303"
        assert diagnostic["file"] == sleepy_file


class TestSarifFormat:
    def sarif(self, capsys, *argv):
        main(["audit", "--format", "sarif", *argv])
        return json.loads(capsys.readouterr().out)

    def test_skeleton_and_tool_name(self, sleepy_file, capsys):
        doc = self.sarif(capsys, sleepy_file)
        assert doc["version"] == "2.1.0"
        assert "$schema" in doc
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-audit"

    def test_rules_use_audit_names(self, sleepy_file, capsys):
        doc = self.sarif(capsys, sleepy_file)
        (rule,) = doc["runs"][0]["tool"]["driver"]["rules"]
        assert rule["id"] == "RL303"
        assert rule["name"] == "sleep-in-async"

    def test_rule_index_consistent(self, sleepy_file, capsys):
        doc = self.sarif(capsys, sleepy_file)
        (run,) = doc["runs"]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        for result in run["results"]:
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]

    def test_artifact_location_is_finding_file(self, sleepy_file, capsys):
        doc = self.sarif(capsys, sleepy_file)
        (result,) = doc["runs"][0]["results"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == sleepy_file
        assert location["region"]["startLine"] == 5

    def test_levels_mapped(self, sleepy_file, capsys):
        doc = self.sarif(capsys, sleepy_file)
        levels = {r["level"] for r in doc["runs"][0]["results"]}
        assert levels == {"warning"}


class TestDogfood:
    def test_own_source_tree_is_strict_clean(self):
        # The CI gate: the analyzer holds over the project's own code
        # (every remaining finding is a justified inline suppression).
        assert main(["audit", "--strict", str(REPO_SRC)]) == 0
