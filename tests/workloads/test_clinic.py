"""Tests for repro.workloads.clinic (the extended-DL workload)."""

from repro.core.swr import is_swr
from repro.core.wr import is_wr
from repro.dlite.extended import is_satisfiable
from repro.obda.system import OBDASystem
from repro.workloads.clinic import (
    clinic_data,
    clinic_ontology,
    clinic_queries,
    clinic_tbox,
)


class TestClinicOntology:
    def test_outside_swr_but_wr(self):
        rules = clinic_ontology()
        assert not is_swr(rules).is_swr  # multi-head rules
        assert is_wr(rules).is_wr

    def test_has_multi_head_rule(self):
        assert any(len(r.head) > 1 for r in clinic_ontology())

    def test_generated_abox_is_consistent(self):
        tbox = clinic_tbox()
        rules = clinic_ontology()
        for seed in range(3):
            abox = clinic_data(10, seed=seed)
            satisfiable, violated = is_satisfiable(tbox, abox, rules=rules)
            assert satisfiable, violated

    def test_data_deterministic(self):
        assert clinic_data(8, seed=1) == clinic_data(8, seed=1)


class TestClinicQueries:
    def test_rewriting_equals_chase_on_all_queries(self):
        rules = clinic_ontology()
        abox = clinic_data(8, seed=2)
        with OBDASystem(rules, abox) as system:
            for name, query in clinic_queries():
                rewriting = system.certain_answers(query)
                chase = system.certain_answers_chase(query)
                assert rewriting == chase, name

    def test_sql_path_agrees(self):
        rules = clinic_ontology()
        abox = clinic_data(6, seed=3)
        with OBDASystem(rules, abox) as system:
            for name, query in clinic_queries():
                assert system.certain_answers_sql(
                    query
                ) == system.certain_answers(query), name

    def test_boolean_ward_query_true_via_invention(self):
        # Even with no worksIn facts at all, every clinician works in
        # SOME ward -- value invention makes the boolean query certain.
        from repro.data.csvio import facts_from_rows
        from repro.data.database import Database

        rules = clinic_ontology()
        abox = Database(facts_from_rows("Doctor", [("d1",)]))
        with OBDASystem(rules, abox) as system:
            name, query = clinic_queries()[-1]
            assert system.certain_answers(query) == {()}
