"""Tests for repro.workloads.paper (the verbatim example sets)."""

from repro.workloads.paper import (
    EXAMPLE1_QUERY,
    EXAMPLE2_QUERY,
    example1,
    example2,
    example3,
)


class TestExample1:
    def test_three_labeled_rules(self):
        rules = example1()
        assert [r.label for r in rules] == ["R1", "R2", "R3"]

    def test_all_simple(self):
        assert all(r.is_simple() for r in example1())

    def test_r1_structure(self):
        r1 = example1()[0]
        assert [a.relation for a in r1.body] == ["s", "t"]
        assert r1.head[0].relation == "r"


class TestExample2:
    def test_r2_has_repeated_variable(self):
        r2 = example2()[1]
        assert r2.body[0].has_repeated_variable()

    def test_r2_head_has_existential(self):
        r2 = example2()[1]
        assert len(r2.existential_head_variables()) == 1

    def test_query_is_boolean_with_constant(self):
        assert EXAMPLE2_QUERY.is_boolean()
        assert EXAMPLE2_QUERY.constants()


class TestExample3:
    def test_rule_shapes_match_paper(self):
        r1, r2, r3 = example3()
        assert r1.head[0].relation == "t"
        assert [a.relation for a in r3.body] == ["u", "t"]
        # t(Y3, Y1, Y1): repeated frontier variable in the head.
        assert r1.head[0].has_repeated_variable()

    def test_example1_query_shape(self):
        assert EXAMPLE1_QUERY.arity == 1
        assert EXAMPLE1_QUERY.body[0].relation == "r"
