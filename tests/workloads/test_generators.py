"""Tests for repro.workloads.generators."""

import random

from repro.classes.linear import is_linear, is_multilinear
from repro.core.swr import is_swr
from repro.lang.signature import Signature
from repro.workloads.generators import (
    concept_hierarchy,
    dangerous_family,
    generate_database,
    random_arbitrary,
    random_linear,
    random_multilinear,
    random_simple,
    role_chain,
    swr_but_not_baselines,
)


class TestSeededDeterminism:
    def test_same_seed_same_rules(self):
        first = random_simple(random.Random(7), n_rules=4)
        second = random_simple(random.Random(7), n_rules=4)
        assert first == second

    def test_different_seed_usually_differs(self):
        first = random_simple(random.Random(1), n_rules=5)
        second = random_simple(random.Random(2), n_rules=5)
        assert first != second


class TestClassTargets:
    def test_random_simple_is_simple(self):
        for seed in range(10):
            rules = random_simple(random.Random(seed), n_rules=4)
            assert all(r.is_simple() for r in rules), seed

    def test_random_linear_is_linear(self):
        for seed in range(10):
            rules = random_linear(random.Random(seed), n_rules=5)
            assert is_linear(rules), seed

    def test_random_multilinear_is_multilinear(self):
        for seed in range(10):
            rules = random_multilinear(random.Random(seed), n_rules=4)
            assert is_multilinear(rules), seed

    def test_random_arbitrary_well_formed(self):
        for seed in range(5):
            rules = random_arbitrary(random.Random(seed), n_rules=4)
            Signature.from_rules(rules)  # arity-consistent


class TestHandCraftedFamilies:
    def test_concept_hierarchy_shape(self):
        rules = concept_hierarchy(5)
        assert len(rules) == 5
        assert is_linear(rules)
        assert is_swr(rules).is_swr

    def test_role_chain_swr(self):
        rules = role_chain(4)
        assert is_swr(rules).is_swr

    def test_swr_but_not_baselines_property(self):
        from repro.classes.sticky import is_sticky, is_sticky_join

        rules = swr_but_not_baselines(copies=1)
        assert is_swr(rules).is_swr
        assert not is_linear(rules)
        assert not is_multilinear(rules)
        assert not is_sticky(rules)
        assert not is_sticky_join(rules)

    def test_swr_but_not_baselines_scales(self):
        assert len(swr_but_not_baselines(copies=3)) == 9
        assert is_swr(swr_but_not_baselines(copies=3)).is_swr

    def test_dangerous_family_not_wr(self):
        from repro.core.wr import is_wr

        rules = dangerous_family(copies=1)
        assert not is_wr(rules).is_wr

    def test_dangerous_family_disjoint_copies(self):
        rules = dangerous_family(copies=2)
        signature = Signature.from_rules(rules)
        assert "s0" in signature and "s1" in signature


class TestGenerateDatabase:
    def test_facts_cover_signature(self):
        rules = concept_hierarchy(3)
        facts = generate_database(random.Random(0), rules, facts_per_relation=2)
        relations = {f.relation for f in facts}
        assert relations == {"c0", "c1", "c2", "c3"}

    def test_all_ground(self):
        rules = role_chain(2)
        facts = generate_database(random.Random(0), rules)
        assert all(f.is_ground() for f in facts)
