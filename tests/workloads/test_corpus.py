"""The corpus regression net: every entry's pinned classifications."""

import pytest

from repro.core.classify import classify
from repro.workloads.corpus import CORPUS, entry


@pytest.mark.parametrize("corpus_entry", CORPUS, ids=lambda e: e.name)
def test_expected_memberships(corpus_entry):
    report = classify(corpus_entry.rules())
    memberships = report.memberships()
    for class_name, expected in corpus_entry.expected.items():
        assert memberships[class_name] is expected, (
            f"{corpus_entry.name}: {class_name} expected {expected}, "
            f"got {memberships[class_name]}"
        )


@pytest.mark.parametrize("corpus_entry", CORPUS, ids=lambda e: e.name)
def test_programs_parse_and_are_arity_consistent(corpus_entry):
    from repro.lang.signature import Signature

    rules = corpus_entry.rules()
    assert rules
    Signature.from_rules(rules)


class TestCorpusStructure:
    def test_names_unique(self):
        names = [e.name for e in CORPUS]
        assert len(names) == len(set(names))

    def test_lookup(self):
        assert entry("paper-example-3").expected["WR"] is True
        with pytest.raises(KeyError):
            entry("missing")

    def test_corpus_covers_both_verdicts_for_core_classes(self):
        """The corpus must exercise both outcomes of SWR and WR."""
        for class_name in ("SWR", "WR"):
            verdicts = {
                e.expected.get(class_name)
                for e in CORPUS
                if class_name in e.expected
            }
            assert verdicts == {True, False}, class_name

    def test_known_implications_hold_on_corpus(self):
        """Cross-entry sanity: class containments on every entry."""
        for corpus_entry in CORPUS:
            report = classify(corpus_entry.rules())
            m = report.memberships()
            if m["inclusion-dependencies"]:
                assert m["linear"]
            if m["linear"]:
                assert m["multilinear"] and m["sticky-join"]
            if m["sticky"]:
                assert m["sticky-join"]
            if m["guarded"]:
                assert m["frontier-guarded"]
