"""Tests for repro.workloads.ontologies."""

from repro.core.classify import classify
from repro.core.swr import is_swr
from repro.workloads.ontologies import (
    transport_data,
    transport_ontology,
    transport_queries,
    university_data,
    university_ontology,
    university_queries,
)


class TestUniversity:
    def test_ontology_is_swr(self):
        assert is_swr(university_ontology()).is_swr

    def test_ontology_outside_all_baselines(self):
        # The showcase property: FO-rewritable via SWR only.
        report = classify(university_ontology())
        assert not report.in_any_baseline()

    def test_data_generator_deterministic(self):
        assert university_data(10, seed=4) == university_data(10, seed=4)

    def test_data_scales_with_size(self):
        assert len(university_data(40, seed=1)) > len(
            university_data(10, seed=1)
        )

    def test_queries_parse_and_cover_hierarchy(self):
        names = [name for name, _ in university_queries()]
        assert len(names) == len(set(names))
        assert len(names) >= 5


class TestTransport:
    def test_ontology_is_swr(self):
        assert is_swr(transport_ontology()).is_swr

    def test_data_nonempty(self):
        assert len(transport_data(10)) > 0

    def test_queries_well_formed(self):
        for name, query in transport_queries():
            assert query.arity >= 0
            assert name.startswith("TQ")
