"""Tests for repro.chase.certain (certain answers via chase)."""

import pytest

from repro.chase.certain import certain_answers, certain_answers_via_chase
from repro.data.database import Database
from repro.lang.errors import ChaseBudgetExceeded
from repro.lang.parser import parse_database, parse_program, parse_query, parse_ucq
from repro.lang.terms import Constant


def db(text):
    return Database(parse_database(text))


class TestCertainAnswers:
    def test_derived_facts_are_certain(self, hierarchy_rules):
        answers = certain_answers(
            parse_query("q(X) :- d(X)"), hierarchy_rules, db("a(v).")
        )
        assert answers == {(Constant("v"),)}

    def test_invented_values_are_not_certain(self, existential_rules):
        answers = certain_answers(
            parse_query("q(Y) :- worksAt(X, Y)"),
            existential_rules,
            db("person(p)."),
        )
        assert answers == frozenset()

    def test_boolean_query_over_invented_values_is_certain(
        self, existential_rules
    ):
        answers = certain_answers(
            parse_query("q() :- worksAt(X, Y), org(Y)"),
            existential_rules,
            db("person(p)."),
        )
        assert answers == {()}

    def test_join_through_invented_value(self):
        rules = parse_program("a(X) -> r(X, Y), s(Y, X).")
        answers = certain_answers(
            parse_query("q(X) :- r(X, Y), s(Y, X)"), rules, db("a(c).")
        )
        assert answers == {(Constant("c"),)}

    def test_ucq_certain_answers(self, hierarchy_rules):
        ucq = parse_ucq("q(X) :- d(X). q(X) :- zzz(X).")
        answers = certain_answers(ucq, hierarchy_rules, db("a(v)."))
        assert answers == {(Constant("v"),)}

    def test_monotone_in_the_database(self, hierarchy_rules):
        small = certain_answers(
            parse_query("q(X) :- d(X)"), hierarchy_rules, db("a(v).")
        )
        large = certain_answers(
            parse_query("q(X) :- d(X)"),
            hierarchy_rules,
            db("a(v). a(w). b(u)."),
        )
        assert small <= large


class TestBudgets:
    def test_strict_raises_on_divergence(self):
        rules = parse_program("p(X) -> r(X, Y). r(X, Y) -> p(Y).")
        with pytest.raises(ChaseBudgetExceeded):
            certain_answers(
                parse_query("q(X) :- p(X)"), rules, db("p(a)."), max_steps=5
            )

    def test_non_strict_reports_incomplete(self):
        rules = parse_program("p(X) -> r(X, Y). r(X, Y) -> p(Y).")
        result = certain_answers_via_chase(
            parse_query("q(X) :- p(X)"),
            rules,
            db("p(a)."),
            max_steps=5,
            strict=False,
        )
        assert not result.complete
        # Sound: the reported tuples are genuinely certain.
        assert (Constant("a"),) in result.answers

    def test_result_provenance_fields(self, hierarchy_rules):
        result = certain_answers_via_chase(
            parse_query("q(X) :- d(X)"), hierarchy_rules, db("a(v).")
        )
        assert result.complete
        assert result.chase_steps == 3
        assert result.chase_size == 4
