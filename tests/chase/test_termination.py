"""Tests for repro.chase.termination (weak acyclicity)."""

from repro.chase.termination import (
    is_weakly_acyclic,
    position_dependency_graph,
)
from repro.lang.atoms import Position
from repro.lang.parser import parse_program
from repro.workloads.paper import example1, example2, example3


class TestDependencyGraph:
    def test_regular_edge_for_copied_variable(self):
        rules = parse_program("a(X) -> b(X).")
        graph = position_dependency_graph(rules)
        assert graph.has_edge(Position("a", 1), Position("b", 1))
        labels = [
            d["special"]
            for _, _, d in graph.edges(data=True)
        ]
        assert labels == [False]

    def test_special_edge_for_invented_value(self):
        rules = parse_program("a(X) -> b(X, Y).")
        graph = position_dependency_graph(rules)
        edges = {
            (s, t, d["special"]) for s, t, d in graph.edges(data=True)
        }
        assert (Position("a", 1), Position("b", 1), False) in edges
        assert (Position("a", 1), Position("b", 2), True) in edges

    def test_non_frontier_body_variable_creates_no_edges(self):
        rules = parse_program("a(X, Z) -> b(X).")
        graph = position_dependency_graph(rules)
        assert not graph.has_edge(Position("a", 2), Position("b", 1))


class TestWeakAcyclicity:
    def test_hierarchy_is_weakly_acyclic(self, hierarchy_rules):
        assert is_weakly_acyclic(hierarchy_rules)

    def test_datalog_cycle_without_invention_is_fine(self):
        rules = parse_program("p(X, Y) -> q(Y, X). q(X, Y) -> p(X, Y).")
        assert is_weakly_acyclic(rules)

    def test_value_inventing_cycle_detected(self):
        rules = parse_program("p(X) -> r(X, Y). r(X, Y) -> p(Y).")
        assert not is_weakly_acyclic(rules)

    def test_self_feeding_existential_detected(self):
        rules = parse_program("r(X, Y) -> r(Y, Z).")
        assert not is_weakly_acyclic(rules)

    def test_paper_example1_weakly_acyclic(self):
        assert is_weakly_acyclic(example1())

    def test_paper_example2_weakly_acyclic(self):
        # Example 2 is NOT FO-rewritable, yet its chase terminates:
        # weak acyclicity and FO-rewritability are orthogonal.
        assert is_weakly_acyclic(example2())

    def test_paper_example3_not_weakly_acyclic(self):
        # The syntactic WA test rejects Example 3 although its chase
        # terminates on actual data: the recursion is "only apparent"
        # (exactly the phenomenon the paper's WR class sees through).
        assert not is_weakly_acyclic(example3())

    def test_empty_set_weakly_acyclic(self):
        assert is_weakly_acyclic(())
