"""Tests for repro.chase.chase."""

import pytest

from repro.chase.chase import (
    chase_closure,
    oblivious_chase,
    restricted_chase,
)
from repro.data.database import Database
from repro.lang.atoms import Atom
from repro.lang.errors import ChaseBudgetExceeded
from repro.lang.parser import parse_database, parse_program
from repro.lang.terms import Constant


def db(text):
    return Database(parse_database(text))


class TestRestrictedChase:
    def test_datalog_saturation(self, hierarchy_rules):
        result = restricted_chase(list(hierarchy_rules), db("a(x)."))
        assert result.fixpoint
        for relation in ("a", "b", "c", "d"):
            assert Atom(relation, [Constant("x")]) in result.instance

    def test_null_invention(self, existential_rules):
        result = restricted_chase(list(existential_rules), db("person(p)."))
        assert result.fixpoint
        assert result.nulls_created == 1
        assert result.instance.count("worksAt") == 1
        assert result.instance.count("org") == 1

    def test_satisfied_head_not_refired(self, existential_rules):
        # p already works somewhere: rule r1 must not invent a null.
        result = restricted_chase(
            list(existential_rules), db("person(p). worksAt(p, acme).")
        )
        assert result.fixpoint
        assert result.nulls_created == 0
        assert result.instance.count("worksAt") == 1

    def test_multi_head_rule_fires_atomically(self):
        rules = parse_program("a(X) -> b(X, Y), c(Y).")
        result = restricted_chase(list(rules), db("a(p)."))
        assert result.fixpoint
        b_rows = result.instance.rows("b")
        c_rows = result.instance.rows("c")
        assert len(b_rows) == 1 and len(c_rows) == 1
        # The invented null is shared between the two head atoms.
        (b_row,) = b_rows
        (c_row,) = c_rows
        assert b_row[1] == c_row[0]

    def test_budget_returns_partial_when_not_strict(self):
        rules = parse_program("p(X) -> r(X, Y). r(X, Y) -> p(Y).")
        result = restricted_chase(list(rules), db("p(a)."), max_steps=10)
        assert not result.fixpoint
        assert result.steps == 10

    def test_budget_strict_raises(self):
        rules = parse_program("p(X) -> r(X, Y). r(X, Y) -> p(Y).")
        with pytest.raises(ChaseBudgetExceeded):
            restricted_chase(
                list(rules), db("p(a)."), max_steps=10, strict=True
            )

    def test_input_database_not_mutated(self, hierarchy_rules):
        database = db("a(x).")
        restricted_chase(list(hierarchy_rules), database)
        assert len(database) == 1

    def test_constants_in_rules_instantiated(self):
        rules = parse_program('special(X) -> labeled(X, "vip").')
        result = restricted_chase(list(rules), db("special(s)."))
        assert Atom(
            "labeled", [Constant("s"), Constant("vip")]
        ) in result.instance

    def test_deterministic_runs(self, existential_rules):
        first = restricted_chase(list(existential_rules), db("person(a). person(b)."))
        second = restricted_chase(list(existential_rules), db("person(a). person(b)."))
        assert first.instance == second.instance


class TestObliviousChase:
    def test_oblivious_fires_even_when_satisfied(self, existential_rules):
        result = oblivious_chase(
            list(existential_rules), db("person(p). worksAt(p, acme).")
        )
        assert result.fixpoint
        # Oblivious chase invents a null although worksAt(p, acme) holds.
        assert result.nulls_created >= 1
        assert result.instance.count("worksAt") == 2

    def test_oblivious_superset_of_restricted(self, existential_rules):
        base = db("person(p).")
        restricted = restricted_chase(list(existential_rules), base.copy())
        oblivious = oblivious_chase(list(existential_rules), base.copy())
        assert len(oblivious.instance) >= len(restricted.instance)

    def test_each_trigger_fires_once(self):
        rules = parse_program("a(X) -> b(X, Y).")
        result = oblivious_chase(list(rules), db("a(p)."))
        assert result.steps == 1
        assert result.fixpoint


class TestChaseClosure:
    def test_closure_convenience(self, hierarchy_rules):
        instance = chase_closure(hierarchy_rules, parse_database("a(x)."))
        assert instance.count("d") == 1

    def test_closure_strict_on_divergence(self):
        rules = parse_program("p(X) -> r(X, Y). r(X, Y) -> p(Y).")
        with pytest.raises(ChaseBudgetExceeded):
            chase_closure(rules, parse_database("p(a)."), max_steps=5)
