"""Tests for repro.chase.nulls (NullFactory)."""

from repro.chase.nulls import NullFactory
from repro.lang.terms import Null


class TestNullFactory:
    def test_sequential_labels(self):
        factory = NullFactory()
        assert factory.fresh() == Null("n1")
        assert factory.fresh() == Null("n2")
        assert factory.created == 2

    def test_custom_prefix(self):
        factory = NullFactory(prefix="w")
        assert factory.fresh() == Null("w1")

    def test_factories_are_independent(self):
        first, second = NullFactory(), NullFactory()
        first.fresh()
        assert second.created == 0
        # Independent factories intentionally repeat labels: a chase
        # run owns its factory and never mixes instances.
        assert second.fresh() == Null("n1")
