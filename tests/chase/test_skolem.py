"""Tests for repro.chase.skolem (the semi-oblivious chase)."""

import pytest

from repro.chase.chase import oblivious_chase, restricted_chase
from repro.chase.skolem import skolem_chase
from repro.data.database import Database
from repro.data.evaluation import evaluate_cq
from repro.lang.errors import ChaseBudgetExceeded
from repro.lang.parser import parse_database, parse_program, parse_query


def db(text):
    return Database(parse_database(text))


class TestSkolemChase:
    def test_datalog_same_as_restricted(self, hierarchy_rules):
        base = db("a(x). b(y).")
        skolem = skolem_chase(list(hierarchy_rules), base.copy())
        restricted = restricted_chase(list(hierarchy_rules), base.copy())
        assert skolem.instance == restricted.instance

    def test_same_frontier_reuses_null(self, existential_rules):
        # person(p) fires r1 once; even replayed triggers reuse the
        # Skolem value -- exactly one worksAt fact per person.
        result = skolem_chase(list(existential_rules), db("person(p)."))
        assert result.fixpoint
        assert result.instance.count("worksAt") == 1

    def test_distinct_frontiers_get_distinct_nulls(self, existential_rules):
        result = skolem_chase(
            list(existential_rules), db("person(p). person(q).")
        )
        nulls = result.instance.nulls()
        assert len(nulls) == 2

    def test_between_restricted_and_oblivious(self, existential_rules):
        base = db("person(p). worksAt(p, acme).")
        restricted = restricted_chase(list(existential_rules), base.copy())
        skolem = skolem_chase(list(existential_rules), base.copy())
        oblivious = oblivious_chase(list(existential_rules), base.copy())
        assert len(restricted.instance) <= len(skolem.instance)
        assert len(skolem.instance) <= len(oblivious.instance)

    def test_certain_answers_match_restricted(self):
        rules = parse_program(
            """
            a(X) -> r(X, Y), s(Y).
            s(Y) -> marked(Y).
            """
        )
        base = db("a(c1). a(c2).")
        query = parse_query("q(X) :- r(X, Y), marked(Y)")
        skolem = skolem_chase(list(rules), base.copy())
        restricted = restricted_chase(list(rules), base.copy())
        assert evaluate_cq(
            query, skolem.instance, certain=True
        ) == evaluate_cq(query, restricted.instance, certain=True)

    def test_deterministic_instance(self, existential_rules):
        first = skolem_chase(list(existential_rules), db("person(a). person(b)."))
        second = skolem_chase(list(existential_rules), db("person(b). person(a)."))
        assert first.instance == second.instance

    def test_budget_strict(self):
        rules = parse_program("p(X) -> r(X, Y). r(X, Y) -> p(Y).")
        with pytest.raises(ChaseBudgetExceeded):
            skolem_chase(list(rules), db("p(a)."), max_steps=5, strict=True)

    def test_budget_non_strict_partial(self):
        rules = parse_program("p(X) -> r(X, Y). r(X, Y) -> p(Y).")
        result = skolem_chase(list(rules), db("p(a)."), max_steps=5)
        assert not result.fixpoint

    def test_multi_head_shares_skolem_value(self):
        rules = parse_program("a(X) -> b(X, Y), c(Y).")
        result = skolem_chase(list(rules), db("a(p)."))
        (b_row,) = result.instance.rows("b")
        (c_row,) = result.instance.rows("c")
        assert b_row[1] == c_row[0]
