"""Tests for repro.core.classify."""

from repro.core.classify import classify
from repro.workloads.ontologies import university_ontology
from repro.workloads.paper import example1, example2, example3


class TestPaperClassifications:
    def test_example1_memberships(self):
        report = classify(example1())
        memberships = report.memberships()
        assert memberships["SWR"] is True
        assert memberships["WR"] is True

    def test_example2_memberships(self):
        report = classify(example2())
        memberships = report.memberships()
        assert memberships["SWR"] is False
        assert memberships["WR"] is False

    def test_example3_escapes_every_baseline(self):
        """The paper's Example 3 narrative, checked class by class."""
        report = classify(example3())
        memberships = report.memberships()
        assert memberships["linear"] is False       # body(R3) has 2 atoms
        assert memberships["multilinear"] is False  # u(Y1) misses Y2
        assert memberships["sticky"] is False       # Y1 twice in t(Y1,Y1,Y2)
        assert memberships["sticky-join"] is False  # Y1 in two atoms
        assert memberships["SWR"] is False          # not simple
        assert memberships["WR"] is True            # the new class wins

    def test_example3_is_agrd(self):
        # Not claimed by the paper, but true and instructive: the same
        # blocked unification that makes the recursion "only apparent"
        # also breaks the R1 -> R3 rule dependency, so the dependency
        # graph is acyclic.
        report = classify(example3())
        assert report.baselines["aGRD"].member


class TestReportStructure:
    def test_table_renders_all_classes(self):
        table = classify(example1()).table()
        for name in ("SWR", "WR", "linear", "sticky", "aGRD"):
            assert name in table

    def test_university_is_swr_only(self):
        # The showcase ontology: SWR/WR but outside every baseline.
        report = classify(university_ontology())
        memberships = report.memberships()
        assert memberships["SWR"] is True
        assert memberships["WR"] is True
        assert not report.in_any_baseline()

    def test_in_any_baseline_positive(self):
        report = classify(example1())
        # Example 1 is not linear (two-atom bodies) but check others:
        # aGRD? it has a dependency cycle; the set is outside baselines
        # except... compute and check coherently with memberships().
        assert report.in_any_baseline() == any(
            report.baselines[name].member
            for name in (
                "linear",
                "multilinear",
                "sticky",
                "sticky-join",
                "aGRD",
                "domain-restricted",
            )
        )

    def test_wr_budget_yields_none(self):
        report = classify(example2(), wr_max_nodes=2)
        assert report.wr is None
        assert report.memberships()["WR"] is None
        assert "?" in report.table()
