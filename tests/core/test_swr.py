"""Tests for repro.core.swr (Definition 5, Theorem 1)."""

from repro.core.swr import is_swr
from repro.lang.parser import parse_program
from repro.workloads.paper import example1, example2, example3


class TestPaperVerdicts:
    def test_example1_is_swr(self):
        result = is_swr(example1())
        assert result.is_swr
        assert result.simple
        assert result.dangerous_cycle is None

    def test_example2_not_swr_because_not_simple(self):
        result = is_swr(example2())
        assert not result.is_swr
        assert not result.simple
        # ... yet the graph condition passes: the documented failure.
        assert result.graph_condition

    def test_example3_not_swr_because_not_simple(self):
        result = is_swr(example3())
        assert not result.is_swr
        assert not result.simple


class TestGraphCondition:
    def test_dangerous_set_rejected(self):
        rules = parse_program("r(Y2, X), t(Y2, V) -> r(X, V).")
        result = is_swr(rules)
        assert not result.is_swr
        assert result.simple
        assert result.dangerous_cycle is not None

    def test_witness_cycle_carries_both_labels(self):
        rules = parse_program("r(Y2, X), t(Y2, V) -> r(X, V).")
        witness = is_swr(rules).dangerous_cycle
        labels = set().union(*(e.labels for e in witness))
        assert {"m", "s"} <= labels

    def test_harmless_recursion_accepted(self):
        # Recursion without splits: plain transitive-style hierarchy.
        rules = parse_program("a(X) -> b(X). b(X) -> a(X).")
        assert is_swr(rules).is_swr

    def test_split_without_missing_is_safe(self):
        # Y2 splits across two atoms but no frontier variable is ever
        # missing: s-edges without m-edges are harmless.
        rules = parse_program("r(X, Y2), t(Y2, X) -> r(X, X2).")
        result = is_swr(rules)
        # NB: rule has repeated variables? No: X appears in two atoms
        # (allowed); within each atom all variables distinct.
        assert result.simple
        assert result.is_swr

    def test_empty_set_is_swr(self):
        assert is_swr(()).is_swr


class TestReporting:
    def test_simplicity_violations_labeled(self):
        result = is_swr(example2())
        assert any(label == "R2" for label, _ in result.simplicity_violations)

    def test_multi_head_reported_without_graph(self):
        rules = parse_program("a(X) -> b(X), c(X).")
        result = is_swr(rules)
        assert not result.is_swr
        assert result.graph is None
        assert not result.graph_condition

    def test_explain_mentions_verdict(self):
        text = is_swr(example1()).explain()
        assert "SWR: True" in text
        text = is_swr(example2()).explain()
        assert "SWR: False" in text
        assert "repeated variable" in text
