"""Tests for repro.core.per_query (per-query class checking)."""

from repro.core.per_query import classify_for_query
from repro.lang.parser import parse_program, parse_query
from repro.workloads.paper import EXAMPLE2_QUERY, example2


def mixed_ontology():
    """Example 2 (not WR) bundled with a harmless hierarchy module."""
    return tuple(example2()) + tuple(
        parse_program(
            """
            good1: a(X) -> b(X).
            good2: b(X) -> c(X).
            """
        )
    )


class TestClassifyForQuery:
    def test_query_touching_bad_fragment_not_guaranteed(self):
        report = classify_for_query(EXAMPLE2_QUERY, mixed_ontology())
        assert not report.fo_rewritable_guaranteed
        assert len(report.relevant) == 2  # the Example 2 rules

    def test_query_in_good_fragment_guaranteed(self):
        report = classify_for_query(
            parse_query("q(X) :- c(X)"), mixed_ontology()
        )
        assert report.fo_rewritable_guaranteed
        assert report.swr.is_swr
        assert len(report.dropped) == 2  # the Example 2 rules dropped

    def test_guarantee_matches_actual_rewriting(self):
        from repro.rewriting.rewriter import rewrite

        rules = mixed_ontology()
        query = parse_query("q(X) :- c(X)")
        report = classify_for_query(query, rules)
        assert report.fo_rewritable_guaranteed
        assert rewrite(query, rules).complete

    def test_wr_fragment_counts_as_guaranteed(self):
        # Example 3 is not SWR but WR: per-query check over it alone.
        from repro.workloads.paper import example3

        report = classify_for_query(
            parse_query("q(X, Y) :- r(X, Y)"), example3()
        )
        assert not report.swr.is_swr
        assert report.wr is not None and report.wr.is_wr
        assert report.fo_rewritable_guaranteed

    def test_unreferenced_relation_trivial_fragment(self):
        report = classify_for_query(
            parse_query("q(X) :- unknown(X)"), mixed_ontology()
        )
        assert report.relevant == ()
        assert report.fo_rewritable_guaranteed
