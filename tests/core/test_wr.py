"""Tests for repro.core.wr (Definition 8, reconstructed)."""

import random

import pytest

from repro.core.swr import is_swr
from repro.core.wr import is_wr
from repro.graphs.pnode_graph import PNodeGraphBudgetExceeded
from repro.lang.parser import parse_program
from repro.workloads.generators import random_linear, random_simple
from repro.workloads.paper import example1, example2, example3


class TestPaperVerdicts:
    def test_example1_is_wr(self):
        assert is_wr(example1()).is_wr

    def test_example2_not_wr(self):
        result = is_wr(example2())
        assert not result.is_wr
        labels = set().union(*(e.labels for e in result.dangerous_cycle))
        assert {"d", "m", "s"} <= labels

    def test_example3_is_wr(self):
        # The paper's flagship: apparent recursion only.
        assert is_wr(example3()).is_wr


class TestRelationToSWR:
    @pytest.mark.parametrize("seed", range(8))
    def test_wr_contains_swr_on_random_simple_sets(self, seed):
        """Paper claim: WR subsumes SWR.

        Checked on random *simple* TGD sets: whenever SWR accepts, the
        reconstructed WR must accept as well.
        """
        rng = random.Random(seed)
        rules = random_simple(rng, n_rules=4, n_relations=4, max_arity=3)
        if is_swr(rules).is_swr:
            assert is_wr(rules).is_wr, [str(r) for r in rules]

    @pytest.mark.parametrize("seed", range(5))
    def test_wr_accepts_random_linear_sets(self, seed):
        rng = random.Random(100 + seed)
        rules = random_linear(rng, n_rules=5)
        assert is_wr(rules).is_wr, [str(r) for r in rules]


class TestBeyondSimple:
    def test_constants_handled(self):
        rules = parse_program(
            """
            a(X, "k") -> r(X).
            r(X) -> b(X, Y).
            """
        )
        assert is_wr(rules).is_wr

    def test_multi_head_handled(self):
        rules = parse_program("a(X) -> b(X, Y), c(Y). c(Y) -> d(Y).")
        assert is_wr(rules).is_wr

    def test_dangerous_multihead_loop_detected(self):
        # A genuine unbounded chain through a two-atom head: each
        # application of R1 invents a value that R2 splits again.
        rules = parse_program(
            """
            s(Y, X), t(Y, V) -> s(X, W).
            s(X, W) -> t(W, X).
            """
        )
        result = is_wr(rules)
        # Whatever the verdict, the checker must terminate and produce
        # a graph; the set resembles Example 2's chain.
        assert result.graph is not None

    def test_budget_propagates(self):
        with pytest.raises(PNodeGraphBudgetExceeded):
            is_wr(example2(), max_nodes=2)


class TestReporting:
    def test_explain_includes_counts(self):
        text = is_wr(example1()).explain()
        assert "WR: True" in text
        assert "nodes" in text

    def test_explain_shows_witness(self):
        text = is_wr(example2()).explain()
        assert "dangerous cycle" in text
