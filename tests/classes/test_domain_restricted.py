"""Tests for repro.classes.domain_restricted and weakly_acyclic checks."""

from repro.classes.domain_restricted import is_domain_restricted
from repro.classes.registry import BASELINE_RECOGNIZERS, all_recognizers
from repro.classes.weakly_acyclic import is_weakly_acyclic_check
from repro.lang.parser import parse_program
from repro.workloads.paper import example3


class TestDomainRestricted:
    def test_all_body_variables_in_head_accepted(self):
        rules = parse_program("a(X, Y) -> b(X, Y, Z).")
        assert is_domain_restricted(rules)

    def test_no_body_variables_in_head_accepted(self):
        rules = parse_program("a(X, Y) -> b(Z).")
        assert is_domain_restricted(rules)

    def test_partial_head_rejected(self):
        rules = parse_program("a(X, Y) -> b(X).")
        check = is_domain_restricted(rules)
        assert not check
        assert "Y" in check.reasons[0]

    def test_per_head_atom_check(self):
        # One head atom full, one empty: both fine.
        rules = parse_program("a(X, Y) -> b(X, Y), c(Z).")
        assert is_domain_restricted(rules)

    def test_example3_not_domain_restricted(self):
        assert not is_domain_restricted(example3())


class TestWeaklyAcyclicCheck:
    def test_accepting_case(self, hierarchy_rules):
        assert is_weakly_acyclic_check(hierarchy_rules)

    def test_rejecting_case(self):
        rules = parse_program("p(X) -> r(X, Y). r(X, Y) -> p(Y).")
        check = is_weakly_acyclic_check(rules)
        assert not check
        assert check.reasons


class TestRegistry:
    def test_baselines_are_the_paper_classes(self):
        names = [name for name, _ in BASELINE_RECOGNIZERS]
        assert names == [
            "inclusion-dependencies",
            "linear",
            "multilinear",
            "sticky",
            "sticky-join",
            "aGRD",
            "domain-restricted",
        ]

    def test_all_recognizers_callable(self, hierarchy_rules):
        for name, recognizer in all_recognizers():
            check = recognizer(hierarchy_rules)
            assert check.name == name
            assert isinstance(check.member, bool)

    def test_known_containments_on_small_programs(self):
        """Linear ⊆ Multilinear, Linear ⊆ Sticky-Join, Sticky ⊆ Sticky-Join."""
        from repro.classes.linear import is_linear, is_multilinear
        from repro.classes.sticky import is_sticky, is_sticky_join

        programs = [
            parse_program("a(X) -> b(X, Y)."),
            parse_program("a(X, Y) -> b(Y)."),
            parse_program("a(X), b(X) -> c(X)."),
            parse_program("a(X, Y), b(Y, Z) -> c(X, Z)."),
            parse_program("t(Y, Y, X) -> s(X)."),
        ]
        for rules in programs:
            if is_linear(rules):
                assert is_multilinear(rules)
                assert is_sticky_join(rules)
            if is_sticky(rules):
                assert is_sticky_join(rules)
