"""Tests for repro.classes.agrd (rule dependencies)."""

from repro.classes.agrd import is_agrd, rule_dependency_graph
from repro.lang.parser import parse_program
from repro.workloads.paper import example1, example2, example3


class TestDependencies:
    def test_head_feeding_body_creates_edge(self):
        rules = parse_program("a(X) -> b(X). b(X) -> c(X).")
        graph = rule_dependency_graph(rules)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_self_dependency(self):
        rules = parse_program("p(X, Y) -> p(Y, Z).")
        graph = rule_dependency_graph(rules)
        assert graph.has_edge(0, 0)

    def test_existential_cannot_bind_constant(self):
        # Rule 1 invents Y; rule 2 requires the second argument to be
        # the constant "k": a fresh null never equals a constant.
        rules = parse_program(
            """
            a(X) -> r(X, Y).
            r(X, "k") -> b(X).
            """
        )
        graph = rule_dependency_graph(rules)
        assert not graph.has_edge(0, 1)

    def test_existential_cannot_merge_with_frontier(self):
        # Rule 1 produces r(x, null); rule 2 needs r(W, W).
        rules = parse_program(
            """
            a(X) -> r(X, Y).
            r(W, W) -> b(W).
            """
        )
        graph = rule_dependency_graph(rules)
        assert not graph.has_edge(0, 1)

    def test_two_existentials_cannot_merge(self):
        rules = parse_program(
            """
            a(X) -> r(Y, Z).
            r(W, W) -> b(W).
            """
        )
        graph = rule_dependency_graph(rules)
        assert not graph.has_edge(0, 1)


class TestVerdicts:
    def test_acyclic_hierarchy_accepted(self, hierarchy_rules):
        assert is_agrd(hierarchy_rules)

    def test_cycle_rejected_with_witness(self):
        rules = parse_program("a(X) -> b(X). b(X) -> a(X).")
        check = is_agrd(rules)
        assert not check
        assert "dependency cycle" in check.reasons[0]

    def test_example1_not_agrd(self):
        # r -> v -> r is a genuine dependency cycle.
        assert not is_agrd(example1())

    def test_example2_not_agrd(self):
        assert not is_agrd(example2())

    def test_example3_is_agrd(self):
        # The blocked unification breaks the only potential cycle.
        assert is_agrd(example3())
