"""Tests for repro.classes.inclusion."""

from repro.classes.inclusion import (
    is_frontier_guarded,
    is_inclusion_dependencies,
)
from repro.classes.linear import is_guarded, is_linear
from repro.core.swr import is_swr
from repro.lang.parser import parse_program
from repro.workloads.paper import example1, example3


class TestInclusionDependencies:
    def test_plain_id_accepted(self):
        rules = parse_program("emp(X, D) -> dept(D, Y).")
        assert is_inclusion_dependencies(rules)

    def test_join_body_rejected(self):
        rules = parse_program("a(X), b(X) -> c(X).")
        check = is_inclusion_dependencies(rules)
        assert not check and "body has 2 atoms" in check.reasons[0]

    def test_repeated_variable_rejected(self):
        rules = parse_program("r(X, X) -> s(X).")
        assert not is_inclusion_dependencies(rules)

    def test_constant_rejected(self):
        rules = parse_program('r(X) -> s(X, "k").')
        assert not is_inclusion_dependencies(rules)

    def test_multi_head_rejected(self):
        rules = parse_program("a(X) -> b(X), c(X).")
        assert not is_inclusion_dependencies(rules)

    def test_ids_are_linear_and_swr(self):
        # The classical containment: IDs ⊆ linear simple TGDs ⊆ SWR.
        rules = parse_program(
            """
            emp(X, D) -> person(X).
            person(X) -> hasName(X, N).
            hasName(X, N) -> named(N).
            """
        )
        assert is_inclusion_dependencies(rules)
        assert is_linear(rules)
        assert is_swr(rules).is_swr

    def test_example1_not_ids(self):
        assert not is_inclusion_dependencies(example1())


class TestFrontierGuarded:
    def test_guard_on_frontier_only(self):
        # The body is not guarded (no atom holds all body variables)
        # but IS frontier-guarded (an atom holds the whole frontier).
        rules = parse_program("big(X, Y), other(Z, W) -> head(X, Y).")
        assert not is_guarded(rules)
        assert is_frontier_guarded(rules)

    def test_guarded_implies_frontier_guarded(self):
        programs = [
            parse_program("a(X, Y) -> b(X)."),
            parse_program("g(X, Y, Z), a(X) -> c(X, Y)."),
        ]
        for rules in programs:
            if is_guarded(rules):
                assert is_frontier_guarded(rules)

    def test_split_frontier_rejected(self):
        rules = parse_program("a(X), b(Y) -> c(X, Y).")
        assert not is_frontier_guarded(rules)

    def test_example3_frontier_guarded(self):
        assert is_frontier_guarded(example3())
