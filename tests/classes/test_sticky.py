"""Tests for repro.classes.sticky (the marking procedure)."""

from repro.classes.sticky import is_sticky, is_sticky_join, sticky_marking
from repro.lang.atoms import Position
from repro.lang.parser import parse_program
from repro.lang.terms import Variable
from repro.workloads.paper import example3


class TestMarking:
    def test_base_step_marks_dropped_variables(self):
        rules = parse_program("a(X, Y) -> b(X).")
        marked, positions = sticky_marking(rules)
        assert (0, Variable("Y")) in marked
        assert (0, Variable("X")) not in marked
        assert Position("a", 2) in positions

    def test_propagation_through_head_positions(self):
        # Rule 1 drops its second variable from position b[2]... rule 2
        # writes Y into b[2] of rule 1's body relation? Construct the
        # classic two-rule propagation:
        rules = parse_program(
            """
            b(X, Y) -> c(X).
            a(X, Y) -> b(X, Y).
            """
        )
        marked, _ = sticky_marking(rules)
        # Y is dropped by rule 1 (marked at b[2]); rule 2's head has Y
        # at b[2], so Y becomes marked in rule 2's body as well.
        assert (0, Variable("Y")) in marked
        assert (1, Variable("Y")) in marked

    def test_no_marking_when_all_variables_kept(self):
        rules = parse_program("a(X, Y) -> b(Y, X).")
        marked, _ = sticky_marking(rules)
        assert marked == frozenset()

    def test_example3_marking_reaches_y1(self):
        marked, _ = sticky_marking(example3())
        # Index 2 is R3; its Y1 must end up marked via propagation.
        assert (2, Variable("Y1")) in marked


class TestSticky:
    def test_joinless_rules_accepted(self):
        rules = parse_program("a(X, Y) -> b(X). b(X) -> c(X, Z).")
        assert is_sticky(rules)

    def test_join_on_kept_variable_accepted(self):
        # X is never marked (it survives into every head).
        rules = parse_program("a(X), b(X) -> c(X).")
        assert is_sticky(rules)

    def test_join_on_dropped_variable_rejected(self):
        rules = parse_program("a(X, Y), b(Y, Z) -> c(X, Z).")
        check = is_sticky(rules)
        assert not check
        assert "Y" in check.reasons[0]

    def test_example3_rejected_with_paper_reason(self):
        # "y1 appears twice in the atom t(y1,y1,y2) of R3"
        check = is_sticky(example3())
        assert not check
        assert any("R3" in r and "Y1" in r for r in check.reasons)

    def test_within_atom_repetition_of_marked_var_rejected(self):
        rules = parse_program("t(Y, Y, X) -> s(X).")
        assert not is_sticky(rules)


class TestStickyJoin:
    def test_sticky_implies_sticky_join(self):
        rules = parse_program("a(X), b(X) -> c(X).")
        assert is_sticky(rules) and is_sticky_join(rules)

    def test_within_atom_repetition_tolerated(self):
        # Marked Y repeated inside ONE atom: sticky fails, sticky-join
        # tolerates it.
        rules = parse_program("t(Y, Y, X) -> s(X).")
        assert not is_sticky(rules)
        assert is_sticky_join(rules)

    def test_cross_atom_marked_join_rejected(self):
        rules = parse_program("a(X, Y), b(Y, Z) -> c(X, Z).")
        check = is_sticky_join(rules)
        assert not check
        assert "distinct body atoms" in check.reasons[0]

    def test_example3_rejected_with_paper_reason(self):
        # "y1 appears in two different atoms of body(R3)"
        check = is_sticky_join(example3())
        assert not check
        assert any("R3" in r for r in check.reasons)

    def test_linear_always_sticky_join(self):
        rules = parse_program("a(X, Y, Y) -> b(X, Z).")
        assert is_sticky_join(rules)
