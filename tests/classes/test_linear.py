"""Tests for repro.classes.linear (shape-based classes)."""

from repro.classes.linear import is_datalog, is_guarded, is_linear, is_multilinear
from repro.lang.parser import parse_program
from repro.workloads.paper import example1, example3


class TestLinear:
    def test_single_atom_bodies_accepted(self):
        rules = parse_program("a(X) -> b(X, Y). b(X, Y) -> c(Y).")
        assert is_linear(rules)

    def test_join_body_rejected(self):
        rules = parse_program("a(X), b(X) -> c(X).")
        check = is_linear(rules)
        assert not check
        assert "2 atoms" in check.reasons[0]

    def test_example1_not_linear(self):
        assert not is_linear(example1())

    def test_empty_set_is_linear(self):
        assert is_linear(())


class TestMultilinear:
    def test_every_linear_set_is_multilinear(self):
        rules = parse_program("a(X) -> b(X, Y). b(X, Y) -> c(Y).")
        assert is_multilinear(rules)

    def test_frontier_in_every_atom_accepted(self):
        rules = parse_program("a(X, Y2), b(X, Z2) -> c(X).")
        assert is_multilinear(rules)

    def test_example3_rejected_via_u_atom(self):
        # Paper: "nor multilinear, since u(y1) in R3 does not contain
        # the variable y2".
        check = is_multilinear(example3())
        assert not check
        assert any("u(Y1)" in r and "Y2" in r for r in check.reasons)

    def test_missing_frontier_var_rejected(self):
        rules = parse_program("a(X), b(Y) -> c(X, Y).")
        assert not is_multilinear(rules)


class TestGuarded:
    def test_guard_atom_accepted(self):
        rules = parse_program("big(X, Y, Z), a(X) -> c(X, Y).")
        assert is_guarded(rules)

    def test_no_guard_rejected(self):
        rules = parse_program("a(X, Y), b(Y, Z) -> c(X, Z).")
        assert not is_guarded(rules)

    def test_linear_always_guarded(self):
        rules = parse_program("a(X, Y) -> b(X).")
        assert is_guarded(rules)


class TestDatalog:
    def test_full_rules_accepted(self):
        rules = parse_program("a(X, Y) -> b(Y, X).")
        assert is_datalog(rules)

    def test_value_invention_rejected(self):
        rules = parse_program("a(X) -> b(X, Y).")
        check = is_datalog(rules)
        assert not check
        assert "Y" in check.reasons[0]
