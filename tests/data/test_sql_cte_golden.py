"""Golden tests for the Datalog target's WITH-CTE SQL compilation.

The emitted SQL is part of the engine's persistent-cache contract: the
same (ontology, query) pair must compile to byte-identical SQL in every
process, under any ``PYTHONHASHSEED``, and regardless of the order the
rules or disjuncts were supplied in.  The goldens under
``tests/data/golden/`` pin the exact text.
"""

import itertools
import os
import subprocess
import sys
from pathlib import Path

from repro.data.sql import datalog_to_sql
from repro.lang.parser import parse_program, parse_query
from repro.lang.queries import UnionOfConjunctiveQueries
from repro.rewriting.datalog_target import rewrite_datalog

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_DIR = REPO_ROOT / "tests" / "data" / "golden"

RULES_TEXT = (
    "R1: a1(X) -> c1(X). "
    "R2: a2(X) -> c1(X). "
    "R3: b1(X) -> c2(X). "
    "R4: b2(X) -> c2(X)."
)
QUERY_TEXT = "q(X) :- c1(X), c2(X)"

# A workload with a join existential: its disjunct takes the full-UCQ
# fallback path, so the golden also pins the goal-block shape.
FALLBACK_RULES_TEXT = "R1: p(X) -> r(X, Y). R2: t(X) -> s(X)."
FALLBACK_QUERY_TEXT = "q(X) :- r(X, Y), s(Y)"


def compile_family() -> str:
    rules = parse_program(RULES_TEXT)
    query = parse_query(QUERY_TEXT)
    return datalog_to_sql(rewrite_datalog(query, rules))


def compile_fallback() -> str:
    rules = parse_program(FALLBACK_RULES_TEXT)
    query = parse_query(FALLBACK_QUERY_TEXT)
    return datalog_to_sql(rewrite_datalog(query, rules))


class TestGoldenText:
    def test_family_matches_golden(self):
        golden = (GOLDEN_DIR / "family_cte.sql").read_text()
        assert compile_family() + "\n" == golden

    def test_fallback_matches_golden(self):
        golden = (GOLDEN_DIR / "fallback_cte.sql").read_text()
        assert compile_fallback() + "\n" == golden

    def test_golden_shape(self):
        sql = compile_family()
        assert sql.startswith("WITH ")
        assert "UNION ALL" in sql
        assert "SELECT DISTINCT" in sql


class TestPermutationStability:
    def test_rule_permutations_identical_bytes(self):
        rules = parse_program(RULES_TEXT)
        query = parse_query(QUERY_TEXT)
        reference = compile_family()
        for permuted in itertools.permutations(rules):
            sql = datalog_to_sql(rewrite_datalog(query, permuted))
            assert sql == reference

    def test_disjunct_permutations_identical_bytes(self):
        rules = parse_program(RULES_TEXT)
        disjuncts = [
            parse_query("q(X) :- c1(X)"),
            parse_query("q(X) :- c2(X)"),
            parse_query(QUERY_TEXT),
        ]
        reference = datalog_to_sql(
            rewrite_datalog(UnionOfConjunctiveQueries(disjuncts), rules)
        )
        for permuted in itertools.permutations(disjuncts):
            sql = datalog_to_sql(
                rewrite_datalog(
                    UnionOfConjunctiveQueries(list(permuted)), rules
                )
            )
            assert sql == reference


class TestHashSeedStability:
    """Byte-identical across interpreter processes with different seeds."""

    def _compile_in_subprocess(self, hash_seed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        script = (
            "from repro.data.sql import datalog_to_sql\n"
            "from repro.lang.parser import parse_program, parse_query\n"
            "from repro.rewriting.datalog_target import rewrite_datalog\n"
            "import sys\n"
            f"rules = parse_program({RULES_TEXT!r})\n"
            f"query = parse_query({QUERY_TEXT!r})\n"
            "sys.stdout.write("
            "datalog_to_sql(rewrite_datalog(query, rules)))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return result.stdout

    def test_byte_identical_across_hash_seeds(self):
        first = self._compile_in_subprocess("1")
        second = self._compile_in_subprocess("31337")
        assert first == second
        golden = (GOLDEN_DIR / "family_cte.sql").read_text()
        assert first + "\n" == golden
