"""Tests for repro.data.sql: SQL compilation and the SQLite backend."""

import pytest

from repro.data.database import Database
from repro.data.evaluation import evaluate_ucq
from repro.data.sql import SQLiteBackend, cq_to_sql, ucq_to_sql
from repro.lang.atoms import Atom
from repro.lang.parser import parse_database, parse_query, parse_ucq
from repro.lang.queries import ConjunctiveQuery
from repro.lang.terms import Constant, Null, Variable

X, Y = Variable("X"), Variable("Y")


def backend_for(text):
    return SQLiteBackend.from_database(Database(parse_database(text)))


class TestCompilation:
    def test_single_atom_select(self):
        sql = cq_to_sql(parse_query("q(X) :- r(X, Y)"))
        assert "SELECT DISTINCT" in sql
        assert '"r"' in sql

    def test_join_condition_emitted(self):
        sql = cq_to_sql(parse_query("q(X) :- r(X, Y), s(Y)"))
        assert "WHERE" in sql and "=" in sql

    def test_constant_becomes_literal(self):
        sql = cq_to_sql(parse_query('q(X) :- r(X, "val")'))
        assert "'s:val'" in sql

    def test_quote_escaping_in_literals(self):
        query = ConjunctiveQuery([X], [Atom("r", [X, Constant("o'brien")])])
        sql = cq_to_sql(query)
        assert "o''brien" in sql

    def test_union_per_disjunct(self):
        sql = ucq_to_sql(parse_ucq("q(X) :- a(X). q(X) :- b(X)."))
        assert sql.count("UNION") == 1


class TestExecution:
    def test_matches_in_memory_evaluator(self):
        database = Database(
            parse_database("r(a, b). r(b, c). r(c, a). s(b). s(c).")
        )
        ucq = parse_ucq("q(X) :- r(X, Y), s(Y). q(X) :- s(X).")
        with SQLiteBackend.from_database(database) as backend:
            assert backend.execute_ucq(ucq) == evaluate_ucq(ucq, database)

    def test_boolean_true(self):
        with backend_for("r(a).") as backend:
            assert backend.execute_cq(parse_query("q() :- r(X)")) == {()}

    def test_boolean_false(self):
        from repro.lang.signature import Signature

        with SQLiteBackend(Signature({"r": 1, "s": 1})) as backend:
            backend.load([Atom("s", [Constant("a")])])
            assert (
                backend.execute_cq(parse_query("q() :- r(X)")) == frozenset()
            )

    def test_integer_constants_roundtrip(self):
        with backend_for("r(1, 2).") as backend:
            answers = backend.execute_cq(parse_query("q(X, Y) :- r(X, Y)"))
            assert answers == {(Constant(1), Constant(2))}

    def test_int_and_string_constants_stay_distinct(self):
        database = Database(
            [Atom("r", [Constant(1)]), Atom("r", [Constant("1")])]
        )
        with SQLiteBackend.from_database(database) as backend:
            answers = backend.execute_cq(parse_query("q(X) :- r(X)"))
            assert answers == {(Constant(1),), (Constant("1"),)}

    def test_nulls_roundtrip(self):
        n = Null("n1")
        database = Database([Atom("r", [n])])
        with SQLiteBackend.from_database(database) as backend:
            answers = backend.execute_cq(parse_query("q(X) :- r(X)"))
            assert answers == {(n,)}

    def test_repeated_variable_join_inside_atom(self):
        with backend_for("r(a, a). r(a, b).") as backend:
            answers = backend.execute_cq(parse_query("q(X) :- r(X, X)"))
            assert answers == {(Constant("a"),)}

    def test_constant_answer_position(self):
        query = ConjunctiveQuery([Constant("k"), X], [Atom("r", [X])])
        with backend_for("r(a).") as backend:
            assert backend.execute_cq(query) == {
                (Constant("k"), Constant("a"))
            }

    def test_missing_relation_table_exists_for_signature(self):
        # Tables exist for every relation in the signature, even with
        # zero facts, so rewritings over empty relations evaluate.
        from repro.lang.signature import Signature

        backend = SQLiteBackend(Signature({"r": 1, "empty": 1}))
        backend.load([Atom("r", [Constant("a")])])
        ucq = parse_ucq("q(X) :- r(X). q(X) :- empty(X).")
        assert len(backend.execute_ucq(ucq)) == 1
        backend.close()

    def test_load_counts_rows(self):
        from repro.lang.signature import Signature

        backend = SQLiteBackend(Signature({"r": 1}))
        assert backend.load([Atom("r", [Constant("a")])]) == 1
        backend.close()


class TestRandomizedAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sql_equals_memory_on_random_data(self, seed):
        import random

        rng = random.Random(seed)
        facts = []
        for _ in range(60):
            facts.append(
                Atom(
                    "e",
                    [
                        Constant(f"v{rng.randint(0, 9)}"),
                        Constant(f"v{rng.randint(0, 9)}"),
                    ],
                )
            )
        for i in range(10):
            if rng.random() < 0.5:
                facts.append(Atom("lbl", [Constant(f"v{i}")]))
        database = Database(facts)
        queries = [
            parse_query("q(X, Y) :- e(X, Y)"),
            parse_query("q(X) :- e(X, Y), e(Y, X)"),
            parse_query("q(X) :- e(X, X)"),
            parse_query("q(X, Z) :- e(X, Y), e(Y, Z), lbl(Y)"),
        ]
        with SQLiteBackend.from_database(database) as backend:
            for query in queries:
                assert backend.execute_cq(query) == evaluate_ucq(
                    query, database
                )
