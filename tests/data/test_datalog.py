"""Tests for repro.data.datalog (semi-naive evaluation)."""

import pytest

from repro.chase.chase import restricted_chase
from repro.data.database import Database
from repro.data.datalog import DatalogProgram, datalog_fragment
from repro.lang.atoms import Atom
from repro.lang.errors import SafetyError
from repro.lang.parser import parse_database, parse_program, parse_query
from repro.lang.terms import Constant


def db(text):
    return Database(parse_database(text))


class TestConstruction:
    def test_existential_rules_rejected(self):
        rules = parse_program("a(X) -> b(X, Y).")
        with pytest.raises(SafetyError):
            DatalogProgram(rules)

    def test_datalog_fragment_selector(self):
        rules = parse_program("a(X) -> b(X, Y). b(X, Y) -> c(X).")
        fragment = datalog_fragment(rules)
        assert len(fragment) == 1
        assert fragment[0].head[0].relation == "c"


class TestMaterialization:
    def test_hierarchy_closure(self, hierarchy_rules):
        program = DatalogProgram(hierarchy_rules)
        result = program.materialize(db("a(x). a(y)."))
        assert result.derived == 6  # b,c,d for each of x,y
        assert result.instance.count("d") == 2

    def test_transitive_closure(self):
        program = DatalogProgram(
            parse_program(
                """
                edge(X, Y) -> path(X, Y).
                edge(X, Y), path(Y, Z) -> path(X, Z).
                """
            )
        )
        result = program.materialize(
            db("edge(a, b). edge(b, c). edge(c, d).")
        )
        assert result.instance.count("path") == 6
        assert Atom(
            "path", [Constant("a"), Constant("d")]
        ) in result.instance

    def test_rounds_reflect_recursion_depth(self):
        program = DatalogProgram(
            parse_program(
                """
                edge(X, Y) -> path(X, Y).
                edge(X, Y), path(Y, Z) -> path(X, Z).
                """
            )
        )
        chain = ". ".join(f"edge(n{i}, n{i + 1})" for i in range(6)) + "."
        result = program.materialize(db(chain))
        # 21 paths over a 6-edge chain; recursion needs more than one
        # round, but the exact count depends on within-round propagation
        # order (hash-seed dependent: observed anywhere from 3 to 6).
        assert result.instance.count("path") == 21
        assert result.rounds >= 2

    def test_cyclic_graph_terminates(self):
        program = DatalogProgram(
            parse_program(
                """
                edge(X, Y) -> path(X, Y).
                path(X, Y), path(Y, Z) -> path(X, Z).
                """
            )
        )
        result = program.materialize(db("edge(a, b). edge(b, a)."))
        assert result.instance.count("path") == 4  # a->a,a->b,b->a,b->b

    def test_matches_restricted_chase(self, hierarchy_rules):
        database = db("a(x). b(z).")
        program = DatalogProgram(hierarchy_rules)
        semi_naive = program.materialize(database).instance
        chase = restricted_chase(list(hierarchy_rules), database).instance
        assert semi_naive == chase

    def test_constants_in_rules(self):
        program = DatalogProgram(
            parse_program('flagged(X) -> status(X, "bad").')
        )
        result = program.materialize(db("flagged(f)."))
        assert Atom(
            "status", [Constant("f"), Constant("bad")]
        ) in result.instance

    def test_input_not_mutated(self, hierarchy_rules):
        database = db("a(x).")
        DatalogProgram(hierarchy_rules).materialize(database)
        assert len(database) == 1

    def test_empty_database(self, hierarchy_rules):
        result = DatalogProgram(hierarchy_rules).materialize(Database())
        assert result.derived == 0 and result.rounds == 0


class TestAnswer:
    def test_answer_over_fixpoint(self, hierarchy_rules):
        program = DatalogProgram(hierarchy_rules)
        answers = program.answer(parse_query("q(X) :- d(X)"), db("a(v)."))
        assert answers == {(Constant("v"),)}

    def test_agrees_with_rewriting(self, hierarchy_rules):
        from repro.data.evaluation import evaluate_ucq
        from repro.rewriting.rewriter import rewrite

        database = db("a(u). b(v). c(w).")
        query = parse_query("q(X) :- d(X)")
        materialised = DatalogProgram(hierarchy_rules).answer(query, database)
        rewriting = rewrite(query, hierarchy_rules)
        assert materialised == evaluate_ucq(rewriting.ucq, database)
