"""Tests for repro.data.csvio."""

from repro.data.csvio import facts_from_rows, load_facts_csv, save_facts_csv
from repro.data.database import Database
from repro.lang.atoms import Atom
from repro.lang.terms import Constant, Null

import pytest

from repro.lang.errors import ReproError


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        database = Database(
            [
                Atom("r", [Constant("a"), Constant(1)]),
                Atom("r", [Constant("b"), Constant(2)]),
                Atom("s", [Constant("x")]),
            ]
        )
        paths = save_facts_csv(database, tmp_path)
        assert sorted(p.name for p in paths) == ["r.csv", "s.csv"]
        loaded = load_facts_csv(tmp_path)
        assert loaded == database

    def test_nulls_roundtrip(self, tmp_path):
        database = Database([Atom("r", [Null("n3"), Constant("a")])])
        save_facts_csv(database, tmp_path)
        assert load_facts_csv(tmp_path) == database

    def test_integers_parsed_back_as_ints(self, tmp_path):
        database = Database([Atom("r", [Constant(7)])])
        save_facts_csv(database, tmp_path)
        loaded = load_facts_csv(tmp_path)
        assert Atom("r", [Constant(7)]) in loaded

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            load_facts_csv(tmp_path / "nope")

    def test_empty_directory_gives_empty_database(self, tmp_path):
        assert len(load_facts_csv(tmp_path)) == 0


class TestFactsFromRows:
    def test_plain_values_wrapped(self):
        facts = facts_from_rows("r", [("a", 1), ("b", 2)])
        assert facts[0] == Atom("r", [Constant("a"), Constant(1)])

    def test_existing_terms_pass_through(self):
        n = Null("n1")
        facts = facts_from_rows("r", [(n,)])
        assert facts[0].terms == (n,)
