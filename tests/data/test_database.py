"""Tests for repro.data.database."""

import pytest

from repro.data.database import Database
from repro.lang.atoms import Atom
from repro.lang.errors import SafetyError, SignatureError
from repro.lang.parser import parse_database
from repro.lang.terms import Constant, Null, Variable

A, B, C = Constant("a"), Constant("b"), Constant("c")


def fact(relation, *values):
    return Atom(relation, [v if isinstance(v, (Constant, Null)) else Constant(v) for v in values])


class TestMutation:
    def test_add_returns_newness(self):
        db = Database()
        assert db.add(fact("r", "a", "b"))
        assert not db.add(fact("r", "a", "b"))

    def test_add_all_counts_new_only(self):
        db = Database()
        added = db.add_all([fact("r", "a"), fact("r", "a"), fact("r", "b")])
        assert added == 2

    def test_non_ground_rejected(self):
        with pytest.raises(SafetyError):
            Database().add(Atom("r", [Variable("X")]))

    def test_arity_consistency_enforced(self):
        db = Database([fact("r", "a")])
        with pytest.raises(SignatureError):
            db.add(fact("r", "a", "b"))

    def test_discard(self):
        db = Database([fact("r", "a")])
        assert db.discard(fact("r", "a"))
        assert not db.discard(fact("r", "a"))
        assert len(db) == 0

    def test_discard_keeps_index_consistent(self):
        db = Database([fact("r", "a", "b"), fact("r", "a", "c")])
        assert len(db.lookup("r", 1, A)) == 2
        db.discard(fact("r", "a", "b"))
        assert len(db.lookup("r", 1, A)) == 1


class TestAccess:
    def test_rows_and_count(self):
        db = Database([fact("r", "a"), fact("r", "b"), fact("s", "c")])
        assert db.count("r") == 2
        assert db.count("missing") == 0
        assert (B,) in db.rows("r")

    def test_lookup_by_position(self):
        db = Database([fact("r", "a", "b"), fact("r", "b", "b"), fact("r", "a", "c")])
        assert len(db.lookup("r", 1, A)) == 2
        assert len(db.lookup("r", 2, B)) == 2
        assert db.lookup("r", 1, C) == ()

    def test_lookup_sees_facts_added_after_index_built(self):
        db = Database([fact("r", "a", "b")])
        assert len(db.lookup("r", 1, A)) == 1  # builds the index
        db.add(fact("r", "a", "c"))
        assert len(db.lookup("r", 1, A)) == 2

    def test_contains_and_iter(self):
        db = Database([fact("r", "a")])
        assert fact("r", "a") in db
        assert fact("r", "b") not in db
        assert list(db) == [fact("r", "a")]

    def test_constants_and_nulls(self):
        n = Null("n1")
        db = Database([Atom("r", [A, n])])
        assert db.constants() == frozenset({A})
        assert db.nulls() == frozenset({n})

    def test_relations_listed_sorted(self):
        db = Database([fact("z", "a"), fact("a", "a")])
        assert db.relations() == ("a", "z")

    def test_signature_tracks_arities(self):
        db = Database([fact("r", "a", "b")])
        assert db.signature["r"] == 2


class TestCopyAndEquality:
    def test_copy_is_independent(self):
        db = Database([fact("r", "a")])
        clone = db.copy()
        clone.add(fact("r", "b"))
        assert len(db) == 1 and len(clone) == 2

    def test_equality_ignores_insert_order(self):
        first = Database([fact("r", "a"), fact("r", "b")])
        second = Database([fact("r", "b"), fact("r", "a")])
        assert first == second

    def test_equality_ignores_empty_relations(self):
        first = Database([fact("r", "a")])
        second = Database([fact("r", "a"), fact("s", "x")])
        second.discard(fact("s", "x"))
        assert first == second

    def test_parse_database_roundtrip(self):
        db = Database(parse_database("r(a, b). s(1)."))
        assert len(db) == 2
        assert fact("s", Constant(1)) in db
