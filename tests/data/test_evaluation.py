"""Tests for repro.data.evaluation (the CQ/UCQ evaluator)."""

from repro.data.database import Database
from repro.data.evaluation import (
    all_homomorphisms,
    evaluate_cq,
    evaluate_ucq,
    find_homomorphism,
    holds,
)
from repro.lang.atoms import Atom
from repro.lang.parser import parse_database, parse_query, parse_ucq
from repro.lang.queries import ConjunctiveQuery
from repro.lang.terms import Constant, Null, Variable

X, Y = Variable("X"), Variable("Y")


def db(text):
    return Database(parse_database(text))


class TestBasicEvaluation:
    def test_single_atom_projection(self):
        database = db("r(a, b). r(a, c). r(b, c).")
        answers = evaluate_cq(parse_query("q(X) :- r(X, Y)"), database)
        assert answers == {(Constant("a"),), (Constant("b"),)}

    def test_join(self):
        database = db("r(a, b). r(b, c). r(c, d).")
        answers = evaluate_cq(
            parse_query("q(X, Z) :- r(X, Y), r(Y, Z)"), database
        )
        assert answers == {
            (Constant("a"), Constant("c")),
            (Constant("b"), Constant("d")),
        }

    def test_constant_selection(self):
        database = db("r(a, b). r(c, b).")
        answers = evaluate_cq(parse_query('q(Y) :- r("a", Y)'), database)
        assert answers == {(Constant("b"),)}

    def test_repeated_variable_in_atom(self):
        database = db("r(a, a). r(a, b).")
        answers = evaluate_cq(parse_query("q(X) :- r(X, X)"), database)
        assert answers == {(Constant("a"),)}

    def test_boolean_query_satisfied(self):
        database = db("r(a).")
        assert evaluate_cq(parse_query("q() :- r(X)"), database) == {()}

    def test_boolean_query_unsatisfied(self):
        database = db("s(a).")
        assert evaluate_cq(parse_query("q() :- r(X)"), database) == frozenset()

    def test_empty_relation_gives_no_answers(self):
        database = db("s(a).")
        assert (
            evaluate_cq(parse_query("q(X) :- r(X, Y), s(X)"), database)
            == frozenset()
        )

    def test_cross_product_when_no_shared_variables(self):
        database = db("r(a). s(b). s(c).")
        answers = evaluate_cq(parse_query("q(X, Y) :- r(X), s(Y)"), database)
        assert len(answers) == 2


class TestAnswerTerms:
    def test_constant_answer_position(self):
        database = db("r(a).")
        query = ConjunctiveQuery([Constant("k"), X], [Atom("r", [X])])
        assert evaluate_cq(query, database) == {
            (Constant("k"), Constant("a"))
        }

    def test_repeated_answer_variable(self):
        database = db("r(a, b).")
        query = ConjunctiveQuery([X, X], [Atom("r", [X, Y])])
        assert evaluate_cq(query, database) == {
            (Constant("a"), Constant("a"))
        }


class TestCertainFilter:
    def test_null_answers_filtered(self):
        n = Null("n1")
        database = Database([Atom("r", [Constant("a"), n])])
        query = parse_query("q(Y) :- r(X, Y)")
        assert evaluate_cq(query, database) == {(n,)}
        assert evaluate_cq(query, database, certain=True) == frozenset()

    def test_boolean_query_over_nulls_still_holds(self):
        n = Null("n1")
        database = Database([Atom("r", [n])])
        assert evaluate_cq(
            parse_query("q() :- r(X)"), database, certain=True
        ) == {()}


class TestUCQEvaluation:
    def test_union_of_disjuncts(self):
        database = db("a(x1). b(x2).")
        ucq = parse_ucq("q(X) :- a(X). q(X) :- b(X).")
        assert len(evaluate_ucq(ucq, database)) == 2

    def test_single_cq_accepted(self):
        database = db("a(x1).")
        assert len(evaluate_ucq(parse_query("q(X) :- a(X)"), database)) == 1


class TestHomomorphisms:
    def test_find_homomorphism(self):
        database = db("r(a, b).")
        hom = find_homomorphism([Atom("r", [X, Y])], database)
        assert hom == {X: Constant("a"), Y: Constant("b")}

    def test_find_homomorphism_failure(self):
        database = db("s(a).")
        assert find_homomorphism([Atom("r", [X])], database) is None

    def test_all_homomorphisms_count(self):
        database = db("r(a). r(b). r(c).")
        homs = list(all_homomorphisms([Atom("r", [X])], database))
        assert len(homs) == 3

    def test_holds(self):
        database = db("r(a, b).")
        assert holds(parse_query("q() :- r(X, Y)"), database)
        assert not holds(parse_query("q() :- r(X, X)"), database)
