"""Tests for repro.dlite.extended and repro.dlite.parser."""

import pytest

from repro.core.wr import is_wr
from repro.data.csvio import facts_from_rows
from repro.data.database import Database
from repro.dlite.extended import (
    Disjointness,
    ExtendedConceptInclusion,
    ExtendedTBox,
    QualifiedExists,
    extended_tbox_to_tgds,
    is_satisfiable,
    violation_queries,
)
from repro.dlite.parser import parse_extended_tbox, parse_tbox
from repro.dlite.syntax import (
    AtomicConcept,
    AtomicRole,
    ConceptInclusion,
    Exists,
    Inverse,
    RoleInclusion,
)
from repro.lang.errors import ParseError

SAMPLE = """
Professor <= Person
Professor <= exists teaches.Course
exists supervises.Student <= Busy
exists teaches <= Teacher
Course <= not Person
teaches- <= taughtBy
"""


class TestParser:
    def test_concept_inclusion(self):
        tbox = parse_extended_tbox("Professor <= Person")
        assert tbox.axioms == (
            ConceptInclusion(
                AtomicConcept("Professor"), AtomicConcept("Person")
            ),
        )

    def test_unqualified_existential(self):
        tbox = parse_extended_tbox("Professor <= exists teaches")
        (axiom,) = tbox.axioms
        assert axiom.sup == Exists(AtomicRole("teaches"))

    def test_inverse_role(self):
        tbox = parse_extended_tbox("exists teaches- <= Course")
        (axiom,) = tbox.axioms
        assert axiom.sub == Exists(Inverse(AtomicRole("teaches")))

    def test_qualified_existential(self):
        tbox = parse_extended_tbox("Professor <= exists teaches.Course")
        (axiom,) = tbox.axioms
        assert isinstance(axiom, ExtendedConceptInclusion)
        assert axiom.sup == QualifiedExists(
            AtomicRole("teaches"), AtomicConcept("Course")
        )

    def test_role_inclusion_with_inverse(self):
        tbox = parse_extended_tbox("teaches- <= taughtBy")
        (axiom,) = tbox.axioms
        assert isinstance(axiom, RoleInclusion)

    def test_disjointness(self):
        tbox = parse_extended_tbox("Student <= not Professor")
        (axiom,) = tbox.axioms
        assert isinstance(axiom, Disjointness)

    def test_comments_ignored(self):
        tbox = parse_extended_tbox("A <= B  % hierarchy\n% full line\n")
        assert len(tbox) == 1

    def test_mixed_role_concept_rejected(self):
        with pytest.raises(ParseError):
            parse_extended_tbox("teaches <= Person")

    def test_concept_inverse_rejected(self):
        with pytest.raises(ParseError):
            parse_extended_tbox("Person- <= Agent")

    def test_strict_parser_rejects_extensions(self):
        parse_tbox("Professor <= Person")  # fine
        with pytest.raises(ParseError):
            parse_tbox("Professor <= exists teaches.Course")
        with pytest.raises(ParseError):
            parse_tbox("A <= not B")


class TestTranslation:
    def test_qualified_rhs_gives_multi_head(self):
        tbox = parse_extended_tbox("Professor <= exists teaches.Course")
        (rule,) = extended_tbox_to_tgds(tbox)
        assert len(rule.head) == 2
        assert len(rule.existential_head_variables()) == 1

    def test_qualified_lhs_gives_two_atom_body(self):
        tbox = parse_extended_tbox("exists supervises.Student <= Busy")
        (rule,) = extended_tbox_to_tgds(tbox)
        assert len(rule.body) == 2
        assert rule.head[0].relation == "Busy"

    def test_disjointness_generates_no_rule(self):
        tbox = parse_extended_tbox(SAMPLE)
        rules = extended_tbox_to_tgds(tbox)
        assert len(rules) == len(tbox) - 1

    def test_sample_is_wr(self):
        rules = extended_tbox_to_tgds(parse_extended_tbox(SAMPLE))
        assert is_wr(rules).is_wr


class TestSatisfiability:
    def test_violation_queries_boolean(self):
        tbox = parse_extended_tbox(SAMPLE)
        queries = violation_queries(tbox)
        assert len(queries) == 1
        assert queries[0].is_boolean()

    def test_consistent_abox(self):
        tbox = parse_extended_tbox(SAMPLE)
        abox = Database(facts_from_rows("Professor", [("noether",)]))
        satisfiable, violated = is_satisfiable(tbox, abox)
        assert satisfiable and violated == ()

    def test_direct_violation(self):
        tbox = parse_extended_tbox(SAMPLE)
        abox = Database(
            facts_from_rows("Course", [("x",)])
            + facts_from_rows("Person", [("x",)])
        )
        satisfiable, violated = is_satisfiable(tbox, abox)
        assert not satisfiable
        assert "Course" in violated[0]

    def test_violation_through_inference(self):
        # Professor(x) derives Person(x); stating Course(x) then
        # violates the disjointness only via the TBox.
        tbox = parse_extended_tbox(SAMPLE)
        abox = Database(
            facts_from_rows("Professor", [("x",)])
            + facts_from_rows("Course", [("x",)])
        )
        satisfiable, _ = is_satisfiable(tbox, abox)
        assert not satisfiable

    def test_invented_values_do_not_violate(self):
        # Professor(x) implies an (anonymous) Course; the anonymous
        # course is not known to be a Person, so no violation.
        tbox = parse_extended_tbox(SAMPLE)
        abox = Database(facts_from_rows("Professor", [("x",)]))
        satisfiable, _ = is_satisfiable(tbox, abox)
        assert satisfiable


class TestExtendedTBoxStructure:
    def test_axiom_partition(self):
        tbox = parse_extended_tbox(SAMPLE)
        assert len(tbox.positive_axioms()) + len(tbox.negative_axioms()) == len(
            tbox
        )

    def test_str_renderings(self):
        tbox = parse_extended_tbox(SAMPLE)
        rendered = "\n".join(str(a) for a in tbox)
        assert "exists teaches.Course" in rendered
        assert "¬" in rendered
