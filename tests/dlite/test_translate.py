"""Tests for repro.dlite (DL-Lite_R syntax and TGD translation)."""

from repro.core.swr import is_swr
from repro.classes.linear import is_linear
from repro.dlite.syntax import (
    AtomicConcept,
    AtomicRole,
    ConceptInclusion,
    Exists,
    Inverse,
    RoleInclusion,
    TBox,
)
from repro.dlite.translate import tbox_to_tgds
from repro.lang.parser import parse_tgd


def tgd_strings(tbox):
    return {
        str(rule).split(": ", 1)[1] for rule in tbox_to_tgds(tbox)
    }


PERSON = AtomicConcept("person")
PROF = AtomicConcept("professor")
TEACHES = AtomicRole("teaches")
TAUGHT_BY = AtomicRole("taughtBy")


class TestConceptInclusions:
    def test_atomic_to_atomic(self):
        tbox = TBox((ConceptInclusion(PROF, PERSON),))
        assert tgd_strings(tbox) == {"professor(X) -> person(X)"}

    def test_atomic_to_exists(self):
        tbox = TBox((ConceptInclusion(PROF, Exists(TEACHES)),))
        assert tgd_strings(tbox) == {"professor(X) -> teaches(X, Zf)"}

    def test_atomic_to_exists_inverse(self):
        tbox = TBox((ConceptInclusion(PROF, Exists(Inverse(TEACHES))),))
        assert tgd_strings(tbox) == {"professor(X) -> teaches(Zf, X)"}

    def test_exists_to_atomic(self):
        tbox = TBox((ConceptInclusion(Exists(TEACHES), PROF),))
        assert tgd_strings(tbox) == {"teaches(X, Y) -> professor(X)"}

    def test_exists_inverse_to_atomic(self):
        tbox = TBox((ConceptInclusion(Exists(Inverse(TEACHES)), PERSON),))
        assert tgd_strings(tbox) == {"teaches(Y, X) -> person(X)"}


class TestRoleInclusions:
    def test_plain_role_inclusion(self):
        tbox = TBox((RoleInclusion(TEACHES, TAUGHT_BY),))
        assert tgd_strings(tbox) == {"teaches(X, Y) -> taughtBy(X, Y)"}

    def test_inverse_on_the_right(self):
        tbox = TBox((RoleInclusion(TEACHES, Inverse(TAUGHT_BY)),))
        assert tgd_strings(tbox) == {"teaches(X, Y) -> taughtBy(Y, X)"}

    def test_inverse_on_the_left(self):
        tbox = TBox((RoleInclusion(Inverse(TEACHES), TAUGHT_BY),))
        assert tgd_strings(tbox) == {"teaches(Y, X) -> taughtBy(X, Y)"}


class TestE11Property:
    """Experiment E11: translated TBoxes are linear, simple and SWR."""

    def sample_tbox(self):
        return TBox(
            (
                ConceptInclusion(PROF, PERSON),
                ConceptInclusion(PROF, Exists(TEACHES)),
                ConceptInclusion(Exists(Inverse(TEACHES)), AtomicConcept("course")),
                RoleInclusion(TEACHES, Inverse(TAUGHT_BY)),
                ConceptInclusion(Exists(TAUGHT_BY), AtomicConcept("course")),
            )
        )

    def test_translation_is_linear(self):
        assert is_linear(tbox_to_tgds(self.sample_tbox()))

    def test_translation_is_simple_and_swr(self):
        rules = tbox_to_tgds(self.sample_tbox())
        result = is_swr(rules)
        assert result.simple
        assert result.is_swr

    def test_labels_sequential(self):
        rules = tbox_to_tgds(self.sample_tbox())
        assert [r.label for r in rules] == ["A1", "A2", "A3", "A4", "A5"]

    def test_roundtrip_through_parser(self):
        for rule in tbox_to_tgds(self.sample_tbox()):
            assert parse_tgd(str(rule)) == rule
