"""Tests for repro.obda.mappings."""

import pytest

from repro.data.database import Database
from repro.data.csvio import facts_from_rows
from repro.lang.errors import SafetyError
from repro.lang.parser import parse_atom
from repro.lang.terms import Constant
from repro.obda.mappings import (
    MappingAssertion,
    apply_mappings,
    identity_mappings,
)


class TestMappingAssertion:
    def test_unsafe_target_rejected(self):
        with pytest.raises(SafetyError):
            MappingAssertion(
                (parse_atom("src(X)"),), parse_atom("tgt(X, Y)")
            )

    def test_empty_source_rejected(self):
        with pytest.raises(SafetyError):
            MappingAssertion((), parse_atom("tgt(X)"))

    def test_constant_in_target_allowed(self):
        mapping = MappingAssertion(
            (parse_atom("src(X)"),), parse_atom('tgt(X, "tag")')
        )
        assert "tag" in str(mapping)


class TestApplyMappings:
    def test_projection_mapping(self):
        source = Database(facts_from_rows("emp", [("a", "hr"), ("b", "it")]))
        mapping = MappingAssertion(
            (parse_atom("emp(P, D)"),), parse_atom("person(P)")
        )
        abox = apply_mappings([mapping], source)
        assert abox.count("person") == 2

    def test_selection_mapping(self):
        source = Database(
            facts_from_rows("emp", [("a", "boss"), ("b", "staff")])
        )
        mapping = MappingAssertion(
            (parse_atom('emp(P, "boss")'),), parse_atom("manager(P)")
        )
        abox = apply_mappings([mapping], source)
        assert abox.rows("manager") == frozenset({(Constant("a"),)})

    def test_join_mapping(self):
        source = Database(
            facts_from_rows("emp", [("a", "hr")])
            + facts_from_rows("dept", [("hr", "london")])
        )
        mapping = MappingAssertion(
            (parse_atom("emp(P, D)"), parse_atom("dept(D, C)")),
            parse_atom("worksIn(P, C)"),
        )
        abox = apply_mappings([mapping], source)
        assert abox.rows("worksIn") == frozenset(
            {(Constant("a"), Constant("london"))}
        )

    def test_constant_injection(self):
        source = Database(facts_from_rows("emp", [("a", "hr")]))
        mapping = MappingAssertion(
            (parse_atom("emp(P, D)"),), parse_atom('status(P, "active")')
        )
        abox = apply_mappings([mapping], source)
        assert (Constant("a"), Constant("active")) in abox.rows("status")

    def test_duplicate_answers_deduplicated(self):
        source = Database(
            facts_from_rows("emp", [("a", "hr"), ("a", "it")])
        )
        mapping = MappingAssertion(
            (parse_atom("emp(P, D)"),), parse_atom("person(P)")
        )
        assert apply_mappings([mapping], source).count("person") == 1


class TestIdentityMappings:
    def test_identity_roundtrip(self):
        source = Database(facts_from_rows("r", [("a", "b")]))
        mappings = identity_mappings([("r", 2)])
        assert apply_mappings(mappings, source) == source
