"""Tests for repro.obda.strategy (the Section-7 decision procedure)."""

from repro.chase.certain import certain_answers
from repro.data.database import Database
from repro.lang.parser import parse_database, parse_program, parse_query
from repro.obda.strategy import Strategy, answer_with_best_strategy
from repro.workloads.paper import EXAMPLE2_QUERY, example2, example3


def db(text):
    return Database(parse_database(text))


class TestStrategySelection:
    def test_swr_fragment_uses_rewriting(self, hierarchy_rules):
        report = answer_with_best_strategy(
            parse_query("q(X) :- d(X)"), hierarchy_rules, db("a(v).")
        )
        assert report.strategy is Strategy.REWRITING
        assert report.exact
        assert len(report.answers) == 1

    def test_wr_fragment_uses_rewriting(self):
        report = answer_with_best_strategy(
            parse_query("q(X, Y) :- r(X, Y)"),
            example3(),
            db("s(a, b, c)."),
        )
        assert report.strategy is Strategy.REWRITING
        assert "WR" in report.reason

    def test_example2_weakly_acyclic_falls_back_to_chase(self):
        # Example 2 is not WR and its chain query diverges, but the
        # set IS weakly acyclic: the chase gives exact answers.
        database = db("t(b, a). r(b, e).")
        report = answer_with_best_strategy(
            EXAMPLE2_QUERY, example2(), database
        )
        assert report.strategy is Strategy.CHASE
        assert report.exact
        assert report.answers == certain_answers(
            EXAMPLE2_QUERY, example2(), database
        )

    def test_non_wa_non_wr_uses_approximation(self):
        # Extend Example 2 with a rule that breaks weak acyclicity.
        rules = parse_program(
            """
            t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).
            s(Y1, Y1, Y2) -> r(Y2, Y3).
            r(X, Y) -> t(Y, Z).
            """
        )
        from repro.chase.termination import is_weakly_acyclic

        assert not is_weakly_acyclic(rules)
        database = db("t(b, a). r(b, e).")
        report = answer_with_best_strategy(
            EXAMPLE2_QUERY, rules, database, probe_depth=8
        )
        assert report.strategy is Strategy.APPROXIMATION
        # Sound: every reported answer is certain (chase would diverge,
        # so validate soundness structurally: the approximation is a
        # subset of a generously-bounded non-strict chase evaluation).
        from repro.chase.certain import certain_answers_via_chase

        lower_bound = certain_answers_via_chase(
            EXAMPLE2_QUERY, rules, database, max_steps=5_000, strict=False
        )
        # Boolean query: if approximation says yes, the (sound) chase
        # prefix must also have derived it.
        if report.answers:
            assert lower_bound.answers == report.answers

    def test_probed_rewriting_branch(self):
        # A per-query terminating case over the non-WR Example 2 where
        # the static check cannot help: the t-query only reaches R1,
        # whose fragment is... still classified; craft a fragment the
        # static check rejects but the probe accepts: Example 2's full
        # fragment with the s-query (s is produced by R1 only and its
        # rewriting terminates).
        report = answer_with_best_strategy(
            parse_query("q() :- s(X, X, Y)"),
            example2(),
            db("t(b, a). r(b, e)."),
            probe_depth=10,
        )
        assert report.strategy in (
            Strategy.PROBED_REWRITING,
            Strategy.REWRITING,
            Strategy.CHASE,
        )
        assert report.exact
        # Whatever branch ran, it must agree with the chase.
        assert report.answers == certain_answers(
            parse_query("q() :- s(X, X, Y)"),
            example2(),
            db("t(b, a). r(b, e)."),
        )

    def test_reason_is_informative(self, hierarchy_rules):
        report = answer_with_best_strategy(
            parse_query("q(X) :- b(X)"), hierarchy_rules, db("a(v).")
        )
        assert "rewriting" in report.reason
