"""Tests for repro.obda.strategy (the Section-7 decision procedure)."""

from repro.analysis import TerminationCriterion
from repro.chase.certain import certain_answers, certain_answers_via_chase
from repro.data.database import Database
from repro.lang.parser import parse_database, parse_program, parse_query
from repro.obda.strategy import Strategy, answer_with_best_strategy
from repro.workloads.interaction import lattice_chase_workload, split_workload
from repro.workloads.paper import EXAMPLE2_QUERY, example2, example3


def db(text):
    return Database(parse_database(text))


class TestStrategySelection:
    def test_swr_fragment_uses_rewriting(self, hierarchy_rules):
        report = answer_with_best_strategy(
            parse_query("q(X) :- d(X)"), hierarchy_rules, db("a(v).")
        )
        assert report.strategy is Strategy.REWRITING
        assert report.exact
        assert len(report.answers) == 1

    def test_wr_fragment_uses_rewriting(self):
        report = answer_with_best_strategy(
            parse_query("q(X, Y) :- r(X, Y)"),
            example3(),
            db("s(a, b, c)."),
        )
        assert report.strategy is Strategy.REWRITING
        assert "WR" in report.reason

    def test_example2_weakly_acyclic_falls_back_to_chase(self):
        # Example 2 is not WR and its chain query diverges, but the
        # set IS weakly acyclic: the chase gives exact answers.
        database = db("t(b, a). r(b, e).")
        report = answer_with_best_strategy(
            EXAMPLE2_QUERY, example2(), database
        )
        assert report.strategy is Strategy.CHASE
        assert report.exact
        assert report.answers == certain_answers(
            EXAMPLE2_QUERY, example2(), database
        )

    def test_non_wa_non_wr_uses_approximation(self):
        # Extend Example 2 with a rule that breaks weak acyclicity.
        rules = parse_program(
            """
            t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).
            s(Y1, Y1, Y2) -> r(Y2, Y3).
            r(X, Y) -> t(Y, Z).
            """
        )
        from repro.chase.termination import is_weakly_acyclic

        assert not is_weakly_acyclic(rules)
        database = db("t(b, a). r(b, e).")
        report = answer_with_best_strategy(
            EXAMPLE2_QUERY, rules, database, probe_depth=8
        )
        assert report.strategy is Strategy.APPROXIMATION
        # Sound: every reported answer is certain (chase would diverge,
        # so validate soundness structurally: the approximation is a
        # subset of a generously-bounded non-strict chase evaluation).
        from repro.chase.certain import certain_answers_via_chase

        lower_bound = certain_answers_via_chase(
            EXAMPLE2_QUERY, rules, database, max_steps=5_000, strict=False
        )
        # Boolean query: if approximation says yes, the (sound) chase
        # prefix must also have derived it.
        if report.answers:
            assert lower_bound.answers == report.answers

    def test_probed_rewriting_branch(self):
        # A per-query terminating case over the non-WR Example 2 where
        # the static check cannot help: the t-query only reaches R1,
        # whose fragment is... still classified; craft a fragment the
        # static check rejects but the probe accepts: Example 2's full
        # fragment with the s-query (s is produced by R1 only and its
        # rewriting terminates).
        report = answer_with_best_strategy(
            parse_query("q() :- s(X, X, Y)"),
            example2(),
            db("t(b, a). r(b, e)."),
            probe_depth=10,
        )
        assert report.strategy in (
            Strategy.PROBED_REWRITING,
            Strategy.REWRITING,
            Strategy.CHASE,
        )
        assert report.exact
        # Whatever branch ran, it must agree with the chase.
        assert report.answers == certain_answers(
            parse_query("q() :- s(X, X, Y)"),
            example2(),
            db("t(b, a). r(b, e)."),
        )

    def test_reason_is_informative(self, hierarchy_rules):
        report = answer_with_best_strategy(
            parse_query("q(X) :- b(X)"), hierarchy_rules, db("a(v).")
        )
        assert "rewriting" in report.reason


class TestDecisionMatrix:
    """One test per cell of the Section-7 decision tree.

    Cells are (fragment class x termination verdict x probe outcome):
    the two static-rewriting rows, the probe row, one chase row per
    termination-lattice member, the split row and the approximation
    fallback.  Each cell asserts the routed strategy, the report
    metadata and -- where a ground truth is computable -- the answers.
    """

    def _report(self, query, rules, database, **kwargs):
        return answer_with_best_strategy(query, rules, database, **kwargs)

    def test_cell_swr_rewriting(self, hierarchy_rules):
        report = self._report(
            parse_query("q(X) :- d(X)"), hierarchy_rules, db("a(v).")
        )
        assert report.strategy is Strategy.REWRITING
        assert report.exact
        assert report.certificate is None  # never reached the lattice

    def test_cell_wr_rewriting(self):
        report = self._report(
            parse_query("q(X, Y) :- r(X, Y)"), example3(), db("s(a, b, c).")
        )
        assert report.strategy is Strategy.REWRITING
        assert report.exact

    def test_cell_probe_terminates(self):
        report = self._report(
            parse_query("q() :- s(X, X, Y)"),
            example2(),
            db("t(b, a). r(b, e)."),
            probe_depth=10,
        )
        assert report.strategy is Strategy.PROBED_REWRITING
        assert report.exact

    def test_cell_chase_weak_acyclicity(self):
        database = db("t(b, a). r(b, e).")
        report = self._report(EXAMPLE2_QUERY, example2(), database)
        assert report.strategy is Strategy.CHASE
        assert report.exact
        assert report.certificate is not None
        assert report.certificate.level is TerminationCriterion.WEAK_ACYCLICITY
        assert report.answers == certain_answers(
            EXAMPLE2_QUERY, example2(), database
        )

    def test_cell_chase_joint_acyclicity(self):
        rules, query, database = lattice_chase_workload("ja")
        report = self._report(query, rules, database)
        assert report.strategy is Strategy.CHASE
        assert report.exact
        assert report.certificate.level is (
            TerminationCriterion.JOINT_ACYCLICITY
        )
        assert "joint-acyclicity" in report.reason
        assert report.answers == certain_answers_via_chase(
            query, rules, database, max_steps=100_000, strict=True
        ).answers

    def test_cell_chase_super_weak_acyclicity(self):
        rules, query, database = lattice_chase_workload("swa")
        report = self._report(query, rules, database)
        assert report.strategy is Strategy.CHASE
        assert report.exact
        assert report.certificate.level is (
            TerminationCriterion.SUPER_WEAK_ACYCLICITY
        )
        assert "super-weak-acyclicity" in report.reason

    def test_cell_split(self):
        rules, query, database = split_workload()
        report = self._report(query, rules, database)
        assert report.strategy is Strategy.SPLIT
        assert report.exact
        assert report.partition is not None and report.partition.proper
        assert not report.certificate.terminating
        assert "separable" in report.reason
        # Ground truth: generously bounded non-strict chase lower bound
        # (sound prefix) must agree on this finite workload.
        lower = certain_answers_via_chase(
            query, rules, database, max_steps=5_000, strict=False
        )
        assert report.answers == lower.answers

    def test_cell_approximation(self):
        # Non-terminating at every lattice level, probe diverges, and
        # the chase-safe core cannot answer the query exactly: Example
        # 2's rules with the invention loop folded back in.
        rules = parse_program(
            """
            t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).
            s(Y1, Y1, Y2) -> r(Y2, Y3).
            r(X, Y) -> t(Y, Z).
            """
        )
        report = self._report(
            EXAMPLE2_QUERY, rules, db("t(b, a). r(b, e)."), probe_depth=8
        )
        assert report.strategy is Strategy.APPROXIMATION
        assert not report.exact
        assert report.certificate is not None
        assert not report.certificate.terminating


class TestSplitDifferential:
    """SPLIT must agree with every other exact evaluation path."""

    def _pieces(self):
        from repro.analysis import separate
        from repro.chase.chase import restricted_chase
        from repro.rewriting.engine import rewrite

        rules, query, database = split_workload()
        partition = separate(rules)
        chased = restricted_chase(list(partition.core), database)
        assert chased.fixpoint
        ucq = rewrite(query, partition.residual).ucq
        return query, rules, database, chased.instance, ucq

    def test_memory_equals_sql_equals_chase(self):
        from repro.data.evaluation import evaluate_ucq
        from repro.data.sql import SQLiteBackend
        from repro.lang.signature import Signature
        from repro.lang.terms import Null

        query, rules, database, chased_db, ucq = self._pieces()

        memory = evaluate_ucq(ucq, chased_db, certain=True)

        signature = Signature(dict(chased_db.signature))
        for rule in rules:
            signature.observe_tgd(rule)
        with SQLiteBackend(signature) as backend:
            backend.load(chased_db.facts())
            raw = backend.execute_ucq(ucq)
        sql = frozenset(
            row
            for row in raw
            if not any(isinstance(t, Null) for t in row)
        )

        chase_lower = certain_answers_via_chase(
            query, rules, database, max_steps=5_000, strict=False
        ).answers

        assert memory == sql == chase_lower

    def test_strategy_answers_match_differential(self):
        rules, query, database = split_workload()
        report = answer_with_best_strategy(query, rules, database)
        assert report.strategy is Strategy.SPLIT
        query2, rules2, _, chased_db, ucq = self._pieces()
        from repro.data.evaluation import evaluate_ucq

        assert report.answers == evaluate_ucq(ucq, chased_db, certain=True)
