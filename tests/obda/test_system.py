"""Tests for repro.obda.system (the OBDA facade)."""

from repro.data.database import Database
from repro.data.csvio import facts_from_rows
from repro.lang.parser import parse_atom, parse_database, parse_query
from repro.lang.terms import Constant
from repro.obda.mappings import MappingAssertion
from repro.obda.system import OBDASystem
from repro.workloads.ontologies import university_data, university_ontology


class TestDirectMode:
    """Source stated directly in the ontology vocabulary."""

    def test_rewriting_answers(self, hierarchy_rules, small_database):
        with OBDASystem(hierarchy_rules, small_database) as system:
            answers = system.certain_answers(parse_query("q(X) :- c(X)"))
            assert answers == {
                (Constant("one"),),
                (Constant("two"),),
                (Constant("three"),),
            }

    def test_three_answering_paths_agree(self, hierarchy_rules, small_database):
        with OBDASystem(hierarchy_rules, small_database) as system:
            query = parse_query("q(X) :- d(X)")
            memory = system.certain_answers(query)
            chase = system.certain_answers_chase(query)
            sql = system.certain_answers_sql(query)
            assert memory == chase == sql

    def test_abox_is_source_without_mappings(
        self, hierarchy_rules, small_database
    ):
        system = OBDASystem(hierarchy_rules, small_database)
        assert system.abox() is small_database

    def test_classification_cached(self, hierarchy_rules):
        system = OBDASystem(hierarchy_rules, Database())
        assert system.classification() is system.classification()

    def test_sql_for_returns_text(self, hierarchy_rules):
        system = OBDASystem(hierarchy_rules, Database())
        assert "SELECT" in system.sql_for(parse_query("q(X) :- d(X)"))


class TestMappedMode:
    def test_mappings_materialize_virtual_abox(self):
        source = Database(facts_from_rows("t_emp", [("ada", "cs")]))
        mappings = (
            MappingAssertion(
                (parse_atom("t_emp(P, D)"),), parse_atom("person(P)")
            ),
        )
        rules = parse_database  # placeholder to appease linters
        from repro.lang.parser import parse_program

        ontology = parse_program("person(X) -> mortal(X).")
        with OBDASystem(ontology, source, mappings=mappings) as system:
            assert len(system.abox()) == 1
            answers = system.certain_answers(
                parse_query("q(X) :- mortal(X)")
            )
            assert answers == {(Constant("ada"),)}


class TestUniversityEndToEnd:
    def test_all_queries_consistent(self):
        from repro.workloads.ontologies import university_queries

        ontology = university_ontology()
        database = university_data(12, seed=5)
        with OBDASystem(ontology, database) as system:
            for name, query in university_queries():
                rewriting = system.certain_answers(query)
                chase = system.certain_answers_chase(query)
                assert rewriting == chase, name
