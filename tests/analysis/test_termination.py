"""Tests for repro.analysis.termination (the termination lattice)."""

import pytest

from repro import obs
from repro.analysis import (
    LATTICE,
    TerminationCriterion,
    clear_certificate_cache,
    clear_graph_cache,
    dependency_graph,
    joint_dependency_graph,
    termination_certificate,
    trigger_graph,
)
from repro.lang.parser import parse_program
from repro.workloads.interaction import ja_not_wa, swa_not_ja
from repro.workloads.paper import example1, example2, example3

WA = TerminationCriterion.WEAK_ACYCLICITY
JA = TerminationCriterion.JOINT_ACYCLICITY
SWA = TerminationCriterion.SUPER_WEAK_ACYCLICITY


def levels(rules):
    cert = termination_certificate(rules)
    return {v.criterion: v.holds for v in cert.verdicts}


class TestLatticeVerdicts:
    def test_example1_weakly_acyclic(self):
        cert = termination_certificate(example1())
        assert cert.terminating
        assert cert.level is WA
        # WA implies the rest without recomputation.
        assert cert.verdict(JA).implied_by is WA
        assert cert.verdict(SWA).implied_by is WA

    def test_example2_weakly_acyclic(self):
        assert termination_certificate(example2()).level is WA

    def test_example3_is_ja_not_wa(self):
        # A paper workload strictly between the lattice's levels.
        cert = termination_certificate(example3())
        assert not cert.verdict(WA).holds
        assert cert.verdict(JA).holds
        assert cert.level is JA

    def test_ja_not_wa_witness_set(self):
        cert = termination_certificate(ja_not_wa())
        assert cert.level is JA
        wa = cert.verdict(WA)
        assert not wa.holds
        # The witness is a concrete cycle with rule provenance.
        assert wa.witness
        assert any("special" in line for line in wa.witness)
        assert set(wa.implicated_rules) <= {"C1", "C2", "C3"}
        assert "C1" in wa.implicated_rules

    def test_swa_not_ja_witness_set(self):
        cert = termination_certificate(swa_not_ja())
        assert cert.level is SWA
        assert not cert.verdict(WA).holds
        ja = cert.verdict(JA)
        assert not ja.holds
        assert ja.witness
        assert "S1" in ja.implicated_rules

    def test_matching_constants_rejected_everywhere(self):
        # Same shape as swa_not_ja but the constants agree: the trigger
        # CAN fire, so even the unification-aware level must reject it.
        rules = parse_program(
            """
            S1: a(X) -> r(X, Y, "b").
            S2: r(X, Y, "b") -> a(Y).
            """
        )
        cert = termination_certificate(rules)
        assert not cert.terminating
        assert cert.level is None
        assert cert.witness  # most general (SWA) witness attached
        assert cert.implicated_rules

    def test_empty_ruleset_terminates(self):
        cert = termination_certificate(())
        assert cert.terminating
        assert cert.level is WA


class TestLatticeContainment:
    """WA => JA => SWA on everything we can throw at it."""

    CORPUS = [
        example1(),
        example2(),
        example3(),
        ja_not_wa(),
        swa_not_ja(),
        parse_program("p(X) -> q(X, Y). q(X, Y) -> p(Y)."),
        parse_program("p(X), q(X) -> p(X)."),
        parse_program('e(X, Y) -> e(Y, Z). e(X, "k") -> p(X).'),
    ]

    @pytest.mark.parametrize("rules", CORPUS, ids=range(len(CORPUS)))
    def test_containment(self, rules):
        verdicts = levels(rules)
        if verdicts[WA]:
            assert verdicts[JA]
        if verdicts[JA]:
            assert verdicts[SWA]

    def test_lattice_order_is_total(self):
        assert [c.order for c in LATTICE] == sorted(
            c.order for c in LATTICE
        )
        assert LATTICE == (WA, JA, SWA)


class TestCertificateStructure:
    def test_to_dict_is_json_ready(self):
        import json

        cert = termination_certificate(ja_not_wa())
        payload = cert.to_dict()
        json.dumps(payload)  # must not raise
        assert payload["terminating"] is True
        assert payload["level"] == "joint-acyclicity"
        by_name = {v["criterion"]: v for v in payload["verdicts"]}
        assert by_name["weak-acyclicity"]["holds"] is False
        assert by_name["weak-acyclicity"]["witness"]
        assert by_name["super-weak-acyclicity"]["implied_by"] == (
            "joint-acyclicity"
        )

    def test_auxiliary_graphs_exposed(self):
        # swa_not_ja: joint graph cyclic (JA fails), trigger graph
        # acyclic (SWA holds, the constant clash breaks the loop).
        assert joint_dependency_graph(swa_not_ja()).find_labeled_cycle(())
        assert not trigger_graph(swa_not_ja()).find_labeled_cycle(())
        # ja_not_wa: the guarded cycle never makes it into the joint
        # graph at all -- exactly why joint acyclicity holds.
        assert not joint_dependency_graph(ja_not_wa()).find_labeled_cycle(())


class TestCaches:
    def test_graph_cache_hits_counted(self):
        clear_graph_cache()
        rules = example2()
        with obs.capture() as cap:
            dependency_graph(rules)
            dependency_graph(rules)
        counters = cap.counters()
        assert counters["analysis.graph_cache_misses"] == 1
        assert counters["analysis.graph_cache_hits"] == 1

    def test_certificate_cache_hits_counted(self):
        clear_certificate_cache()
        rules = ja_not_wa()
        with obs.capture() as cap:
            termination_certificate(rules)
            termination_certificate(rules)
        counters = cap.counters()
        assert counters["analysis.certificates_computed"] == 1
        assert counters["analysis.certificate_cache_hits"] == 1

    def test_is_weakly_acyclic_delegates_to_cache(self):
        from repro.chase.termination import is_weakly_acyclic

        clear_graph_cache()
        rules = example2()
        with obs.capture() as cap:
            assert is_weakly_acyclic(rules)
            assert is_weakly_acyclic(rules)
        assert cap.counters()["analysis.graph_cache_hits"] >= 1
