"""Tests for repro.analysis.separability (core/residual partition)."""

from repro import obs
from repro.analysis import separate
from repro.analysis.depgraph import rules_by_name
from repro.lang.parser import parse_program, parse_query
from repro.workloads.interaction import split_workload
from repro.workloads.paper import example2


def names(rules, universe):
    lookup = {id(rule): name for name, rule in rules_by_name(universe).items()}
    return {lookup[id(rule)] for rule in rules}


class TestPartition:
    def test_split_workload_partitions_cleanly(self):
        rules, _, _ = split_workload()
        report = separate(rules)
        assert report.separable and report.proper
        assert names(report.core, rules) == {"R1", "R2", "R3"}
        assert names(report.residual, rules) == {"R4", "R5"}
        assert report.core_certificate.terminating
        assert not report.full_certificate.terminating

    def test_terminating_set_is_all_core(self):
        report = separate(example2())
        assert report.separable
        assert not report.proper  # nothing left over to rewrite
        assert len(report.core) == len(example2())
        assert report.residual == ()

    def test_stratification_pulls_readers_into_residual(self):
        # p -> q invents; the reader of q cannot stay in the core, or
        # the one-shot core chase would miss q-facts the residual adds.
        rules = parse_program(
            """
            A: p(X) -> q(X, Y).
            B: q(X, Y) -> p(Y).
            C: q(X, Y) -> seen(X).
            D: base(X) -> p(X).
            """
        )
        report = separate(rules)
        if report.proper:
            core = names(report.core, rules)
            residual = names(report.residual, rules)
            residual_heads = {
                atom.relation
                for rule in report.residual
                for atom in rule.head
            }
            for rule in report.core:
                body_relations = {atom.relation for atom in rule.body}
                assert not body_relations & residual_heads, (
                    core,
                    residual,
                )

    def test_inseparable_set(self):
        # The classic two-rule invention cycle: evicting the implicated
        # rules empties the core, so no chase-safe part remains.
        rules = parse_program("L: p(X) -> q(X, Y). M: q(X, Y) -> p(Y).")
        report = separate(rules)
        assert not report.separable
        assert not report.proper
        assert report.core == ()
        assert len(report.residual) == 2

    def test_counters(self):
        rules, _, _ = split_workload()
        with obs.capture() as cap:
            separate(rules)
        counters = cap.counters()
        assert counters["analysis.separations"] == 1
        assert counters["analysis.proper_separations"] == 1

    def test_to_dict_is_json_ready(self):
        import json

        rules, query, _ = split_workload()
        report = separate(rules, queries=(query,))
        payload = report.to_dict()
        json.dumps(payload)
        assert payload["separable"] is True
        assert payload["proper"] is True
        assert len(payload["core"]) == 3
        assert len(payload["residual"]) == 2

    def test_residual_bound_no_larger_than_full(self):
        rules, query, _ = split_workload()
        report = separate(rules, queries=(query,))
        if report.residual_bound is not None and report.full_bound is not None:
            assert report.residual_bound <= report.full_bound


class TestAnalyze:
    def test_analyze_bundles_both_reports(self):
        from repro.analysis import analyze

        rules, query, _ = split_workload()
        report = analyze(rules, queries=(query,))
        assert not report.terminating
        assert report.level is None
        assert report.separability.proper
        payload = report.to_dict()
        assert set(payload) == {"termination", "separability"}

    def test_analyze_terminating_set(self):
        from repro.analysis import analyze
        from repro.analysis.termination import TerminationCriterion

        report = analyze(example2())
        assert report.terminating
        assert report.level is TerminationCriterion.WEAK_ACYCLICITY
