"""Tests for repro.lang.substitution."""

import pytest

from repro.lang.atoms import Atom
from repro.lang.substitution import Substitution, rename_apart
from repro.lang.terms import Constant, Variable

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")
A = Constant("a")


class TestSubstitution:
    def test_identity_bindings_dropped(self):
        sub = Substitution({X: X, Y: A})
        assert X not in sub
        assert sub[Y] == A

    def test_apply_term(self):
        sub = Substitution({X: A})
        assert sub.apply_term(X) == A
        assert sub.apply_term(Y) == Y
        assert sub.apply_term(A) == A

    def test_apply_is_simultaneous_not_iterated(self):
        sub = Substitution({X: Y, Y: A})
        # X maps to Y, not all the way to A.
        assert sub.apply_term(X) == Y

    def test_apply_atom(self):
        sub = Substitution({X: A, Y: Z})
        assert sub.apply_atom(Atom("r", [X, Y, X])) == Atom("r", [A, Z, A])

    def test_compose_order(self):
        first = Substitution({X: Y})
        second = Substitution({Y: A})
        composed = first.compose(second)
        assert composed.apply_term(X) == A
        assert composed.apply_term(Y) == A

    def test_compose_respects_apply_equation(self):
        first = Substitution({X: Y, Z: A})
        second = Substitution({Y: W})
        composed = first.compose(second)
        for term in (X, Y, Z, W, A):
            assert composed.apply_term(term) == second.apply_term(
                first.apply_term(term)
            )

    def test_bind_overrides(self):
        sub = Substitution({X: Y}).bind(X, A)
        assert sub[X] == A

    def test_restrict(self):
        sub = Substitution({X: A, Y: A})
        restricted = sub.restrict([X])
        assert X in restricted and Y not in restricted

    def test_renaming_detection(self):
        assert Substitution({X: Y, Z: W}).is_renaming()
        assert not Substitution({X: Y, Z: Y}).is_renaming()  # not injective
        assert not Substitution({X: A}).is_renaming()

    def test_non_variable_domain_rejected(self):
        with pytest.raises(TypeError):
            Substitution({A: X})  # type: ignore[dict-item]

    def test_equality_and_hash(self):
        assert Substitution({X: A}) == Substitution({X: A})
        assert len({Substitution({X: A}), Substitution({X: A})}) == 1

    def test_identity_is_empty(self):
        assert len(Substitution.identity()) == 0


class TestRenameApart:
    def test_only_clashing_names_renamed(self):
        renaming = rename_apart([X, Y], taken=[X])
        assert X in renaming
        assert Y not in renaming

    def test_renamed_variables_avoid_taken(self):
        renaming = rename_apart([X], taken=[X, Variable("X~1")])
        assert renaming[X] == Variable("X~2")

    def test_result_is_injective(self):
        taken = [X, Y]
        renaming = rename_apart([X, Y], taken=taken)
        images = set(renaming.values())
        assert len(images) == 2
        assert images.isdisjoint(set(taken))

    def test_no_clash_returns_empty(self):
        assert len(rename_apart([X], taken=[Y])) == 0
