"""Tests for repro.lang.tgd."""

import pytest

from repro.lang.atoms import Atom
from repro.lang.errors import SafetyError
from repro.lang.parser import parse_tgd
from repro.lang.substitution import Substitution
from repro.lang.terms import Constant, Variable
from repro.lang.tgd import TGD, normalize_to_single_head

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


class TestVariableClassification:
    def test_distinguished_variables(self):
        rule = parse_tgd("s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3)")
        names = [v.name for v in rule.distinguished_variables()]
        assert names == ["Y1", "Y3"]

    def test_existential_body_variables(self):
        rule = parse_tgd("s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3)")
        names = [v.name for v in rule.existential_body_variables()]
        assert names == ["Y2", "Y4"]

    def test_existential_head_variables(self):
        rule = parse_tgd("v(Y1, Y2), q0(Y2) -> s(Y1, Y3, Y2)")
        names = [v.name for v in rule.existential_head_variables()]
        assert names == ["Y3"]

    def test_all_classifications_partition_variables(self):
        rule = parse_tgd("a(X, Y), b(Y, Z) -> c(X, W, Z)")
        every = set(rule.variables())
        frontier = set(rule.distinguished_variables())
        ex_body = set(rule.existential_body_variables())
        ex_head = set(rule.existential_head_variables())
        assert frontier | ex_body | ex_head == every
        assert frontier & ex_body == set()
        assert frontier & ex_head == set()
        assert ex_body & ex_head == set()

    def test_constants_collected(self):
        rule = parse_tgd('a(X, "k") -> b(X, 3)')
        assert rule.constants() == (Constant("k"), Constant(3))


class TestShapePredicates:
    def test_simple_rule(self):
        assert parse_tgd("a(X, Y) -> b(Y, Z)").is_simple()

    def test_repeated_variable_not_simple(self):
        rule = parse_tgd("a(X, X) -> b(X)")
        assert not rule.is_simple()
        assert any("repeated" in r for r in rule.simplicity_violations())

    def test_constant_not_simple(self):
        rule = parse_tgd('a(X, "c") -> b(X)')
        assert not rule.is_simple()
        assert any("constant" in r for r in rule.simplicity_violations())

    def test_multi_head_not_simple(self):
        rule = parse_tgd("a(X) -> b(X), c(X)")
        assert not rule.is_simple()
        assert any("head has" in r for r in rule.simplicity_violations())

    def test_datalog_detection(self):
        assert parse_tgd("a(X, Y) -> b(Y, X)").is_datalog()
        assert not parse_tgd("a(X) -> b(X, Y)").is_datalog()

    def test_single_head_accessor(self):
        assert parse_tgd("a(X) -> b(X)").single_head() == Atom("b", [X])
        with pytest.raises(SafetyError):
            parse_tgd("a(X) -> b(X), c(X)").single_head()


class TestConstruction:
    def test_empty_body_rejected(self):
        with pytest.raises(SafetyError):
            TGD([], [Atom("r", [X])])

    def test_empty_head_rejected(self):
        with pytest.raises(SafetyError):
            TGD([Atom("r", [X])], [])

    def test_label_does_not_affect_equality(self):
        first = parse_tgd("one: a(X) -> b(X)")
        second = parse_tgd("two: a(X) -> b(X)")
        assert first == second
        assert first.label == "one" and second.label == "two"


class TestTransformation:
    def test_rename_apart_avoids_taken(self):
        rule = parse_tgd("a(X, Y) -> b(Y)")
        renamed = rule.rename_apart([X])
        renamed_vars = {v.name for v in renamed.variables()}
        assert "X" not in renamed_vars
        assert renamed.body[0].relation == "a"

    def test_rename_apart_without_clash_is_identity(self):
        rule = parse_tgd("a(X) -> b(X)")
        assert rule.rename_apart([Y]) is rule

    def test_apply_substitution(self):
        rule = parse_tgd("a(X) -> b(X, Y)")
        applied = rule.apply(Substitution({X: Z}))
        assert applied.body[0] == Atom("a", [Z])
        assert applied.head[0] == Atom("b", [Z, Y])


class TestNormalizeToSingleHead:
    def test_splittable_head_is_split(self):
        rule = parse_tgd("a(X) -> b(X), c(X, Y)")
        normalized = normalize_to_single_head([rule])
        assert len(normalized) == 2
        assert all(len(r.head) == 1 for r in normalized)

    def test_shared_existential_blocks_split(self):
        rule = parse_tgd("a(X) -> b(X, Y), c(Y)")
        normalized = normalize_to_single_head([rule])
        assert normalized == (rule,)

    def test_single_head_passthrough(self):
        rule = parse_tgd("a(X) -> b(X)")
        assert normalize_to_single_head([rule]) == (rule,)

    def test_split_labels_are_derived(self):
        rule = parse_tgd("r9: a(X) -> b(X), c(X)")
        labels = [r.label for r in normalize_to_single_head([rule])]
        assert labels == ["r9.1", "r9.2"]
