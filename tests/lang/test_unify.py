"""Tests for repro.lang.unify."""

from repro.lang.atoms import Atom
from repro.lang.terms import Constant, Null, Variable
from repro.lang.unify import mgu, mgu_atom_sets, mgu_atoms, unifiable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
A, B = Constant("a"), Constant("b")


class TestMGU:
    def test_variable_to_constant(self):
        sub = mgu([(X, A)])
        assert sub is not None and sub[X] == A

    def test_variable_to_variable(self):
        sub = mgu([(X, Y)])
        assert sub is not None
        assert sub.apply_term(X) == sub.apply_term(Y)

    def test_distinct_constants_fail(self):
        assert mgu([(A, B)]) is None

    def test_same_constant_trivially_unifies(self):
        sub = mgu([(A, A)])
        assert sub is not None and len(sub) == 0

    def test_transitive_chain_resolves(self):
        sub = mgu([(X, Y), (Y, Z), (Z, A)])
        assert sub is not None
        assert sub.apply_term(X) == A
        assert sub.apply_term(Y) == A
        assert sub.apply_term(Z) == A

    def test_conflict_through_chain_fails(self):
        assert mgu([(X, A), (X, B)]) is None
        assert mgu([(X, Y), (X, A), (Y, B)]) is None

    def test_nulls_behave_like_constants(self):
        n1, n2 = Null("n1"), Null("n2")
        assert mgu([(n1, n2)]) is None
        sub = mgu([(X, n1)])
        assert sub is not None and sub[X] == n1

    def test_result_is_idempotent(self):
        sub = mgu([(X, Y), (Y, Z)])
        assert sub is not None
        for var in (X, Y, Z):
            once = sub.apply_term(var)
            assert sub.apply_term(once) == once


class TestMGUAtoms:
    def test_same_relation_unifies(self):
        sub = mgu_atoms(Atom("r", [X, A]), Atom("r", [B, Y]))
        assert sub is not None
        assert sub[X] == B and sub[Y] == A

    def test_relation_mismatch(self):
        assert mgu_atoms(Atom("r", [X]), Atom("s", [X])) is None

    def test_arity_mismatch(self):
        assert mgu_atoms(Atom("r", [X]), Atom("r", [X, Y])) is None

    def test_repeated_variable_propagates(self):
        sub = mgu_atoms(Atom("r", [X, X]), Atom("r", [A, Y]))
        assert sub is not None
        assert sub.apply_term(Y) == A

    def test_repeated_variable_conflict(self):
        assert mgu_atoms(Atom("r", [X, X]), Atom("r", [A, B])) is None

    def test_unifiable_predicate(self):
        assert unifiable(Atom("r", [X]), Atom("r", [A]))
        assert not unifiable(Atom("r", [A]), Atom("r", [B]))


class TestMGUAtomSets:
    def test_simultaneous_unification(self):
        pairs = [
            (Atom("r", [X, Y]), Atom("r", [Z, Z])),
            (Atom("s", [X]), Atom("s", [A])),
        ]
        sub = mgu_atom_sets(pairs)
        assert sub is not None
        assert sub.apply_term(Y) == A  # X=Z=Y and X=a

    def test_simultaneous_conflict(self):
        pairs = [
            (Atom("r", [X]), Atom("r", [A])),
            (Atom("s", [X]), Atom("s", [B])),
        ]
        assert mgu_atom_sets(pairs) is None
