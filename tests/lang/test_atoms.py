"""Tests for repro.lang.atoms."""

import pytest

from repro.lang.atoms import Atom, Position
from repro.lang.terms import Constant, Null, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
A, B = Constant("a"), Constant("b")


class TestAtom:
    def test_positions_are_one_based(self):
        atom = Atom("r", [X, A])
        assert atom[1] == X
        assert atom[2] == A

    def test_position_out_of_range(self):
        atom = Atom("r", [X])
        with pytest.raises(IndexError):
            atom[0]
        with pytest.raises(IndexError):
            atom[2]

    def test_variables_ordered_without_repeats(self):
        atom = Atom("r", [Y, X, Y, A])
        assert atom.variables() == (Y, X)

    def test_constants_ordered_without_repeats(self):
        atom = Atom("r", [A, X, B, A])
        assert atom.constants() == (A, B)

    def test_nulls_collected(self):
        n = Null("n1")
        assert Atom("r", [n, X]).nulls() == (n,)

    def test_positions_of_repeated_term(self):
        atom = Atom("r", [X, Y, X])
        assert atom.positions_of(X) == (1, 3)
        assert atom.positions_of(Y) == (2,)
        assert atom.positions_of(Z) == ()

    def test_repeated_variable_detection(self):
        assert Atom("r", [X, X]).has_repeated_variable()
        assert not Atom("r", [X, Y]).has_repeated_variable()
        # repeated constants are not repeated *variables*
        assert not Atom("r", [A, A]).has_repeated_variable()

    def test_groundness(self):
        assert Atom("r", [A, Null("n")]).is_ground()
        assert not Atom("r", [A, X]).is_ground()

    def test_equality_and_hash(self):
        assert Atom("r", [X, A]) == Atom("r", [X, A])
        assert Atom("r", [X, A]) != Atom("r", [A, X])
        assert Atom("r", [X]) != Atom("s", [X])
        assert len({Atom("r", [X]), Atom("r", [X])}) == 1

    def test_str_rendering(self):
        assert str(Atom("r", [X, A])) == 'r(X, "a")'

    def test_zero_arity_atom(self):
        atom = Atom("done", [])
        assert atom.arity == 0
        assert atom.is_ground()
        assert str(atom) == "done()"

    def test_empty_relation_rejected(self):
        with pytest.raises(ValueError):
            Atom("", [X])

    def test_sort_key_orders_by_relation_then_terms(self):
        atoms = [Atom("s", [X]), Atom("r", [Y]), Atom("r", [A])]
        ordered = sorted(atoms)
        assert [a.relation for a in ordered] == ["r", "r", "s"]
        assert ordered[0] == Atom("r", [A])


class TestPosition:
    def test_generic_versus_indexed(self):
        assert Position("r").is_generic
        assert not Position("r", 2).is_generic

    def test_equality(self):
        assert Position("r") == Position("r")
        assert Position("r", 1) != Position("r", 2)
        assert Position("r") != Position("r", 1)
        assert Position("r", 1) != Position("s", 1)

    def test_str_rendering_matches_paper(self):
        assert str(Position("r")) == "r[ ]"
        assert str(Position("r", 2)) == "r[2]"

    def test_invalid_index_rejected(self):
        with pytest.raises(ValueError):
            Position("r", 0)

    def test_sorting_generic_first(self):
        positions = [Position("r", 2), Position("r"), Position("r", 1)]
        assert sorted(positions) == [
            Position("r"),
            Position("r", 1),
            Position("r", 2),
        ]
