"""Tests for the error model (repro.lang.errors)."""

import pytest

from repro.lang.errors import (
    ChaseBudgetExceeded,
    NotSupportedError,
    ParseError,
    ReproError,
    RewritingBudgetExceeded,
    SafetyError,
    SignatureError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            ParseError,
            SafetyError,
            SignatureError,
            RewritingBudgetExceeded,
            ChaseBudgetExceeded,
            NotSupportedError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_pnode_budget_error_in_hierarchy(self):
        from repro.graphs.pnode_graph import PNodeGraphBudgetExceeded

        assert issubclass(PNodeGraphBudgetExceeded, ReproError)

    def test_catching_repro_error_catches_all(self):
        with pytest.raises(ReproError):
            raise ParseError("boom")


class TestParseErrorContext:
    def test_offset_rendered(self):
        error = ParseError("bad token", text="abc$def", pos=3)
        assert "offset 3" in str(error)
        assert error.pos == 3

    def test_without_context(self):
        error = ParseError("bad token")
        assert str(error) == "bad token"


class TestRewritingBudgetPayload:
    def test_diagnostics_attached(self):
        error = RewritingBudgetExceeded(
            "over budget", partial_cqs=42, depth_reached=7
        )
        assert error.partial_cqs == 42
        assert error.depth_reached == 7
