"""Tests for repro.lang.terms."""

import pytest

from repro.lang.terms import (
    Constant,
    Null,
    Variable,
    fresh_null,
    fresh_variable,
    is_constant,
    is_ground,
    is_null,
    is_variable,
    term_sort_key,
)


class TestVariable:
    def test_equality_is_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hashable_and_set_usable(self):
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_str_is_bare_name(self):
        assert str(Variable("Abc")) == "Abc"


class TestConstant:
    def test_equality_is_by_payload(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")

    def test_int_and_str_payloads_distinct(self):
        assert Constant(1) != Constant("1")

    def test_str_rendering_quotes_strings(self):
        assert str(Constant("a")) == '"a"'
        assert str(Constant(42)) == "42"

    def test_not_equal_to_variable_of_same_text(self):
        assert Constant("X") != Variable("X")


class TestNull:
    def test_equality_is_by_label(self):
        assert Null("n1") == Null("n1")
        assert Null("n1") != Null("n2")

    def test_str_rendering(self):
        assert str(Null("n7")) == "_:n7"

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            Null("")


class TestPredicates:
    def test_kind_predicates(self):
        assert is_variable(Variable("X"))
        assert is_constant(Constant("a"))
        assert is_null(Null("n"))
        assert not is_variable(Constant("a"))
        assert not is_constant(Null("n"))

    def test_groundness(self):
        assert is_ground(Constant("a"))
        assert is_ground(Null("n"))
        assert not is_ground(Variable("X"))


class TestOrdering:
    def test_total_order_across_kinds(self):
        terms = [Variable("X"), Null("n"), Constant("a")]
        ordered = sorted(terms, key=term_sort_key)
        assert ordered == [Constant("a"), Null("n"), Variable("X")]

    def test_lt_operator_consistent_with_key(self):
        assert Constant("a") < Variable("A")
        assert Null("n") < Variable("A")

    def test_sorting_is_deterministic_for_mixed_payloads(self):
        first = sorted([Constant(2), Constant("b")], key=term_sort_key)
        second = sorted([Constant("b"), Constant(2)], key=term_sort_key)
        assert first == second


class TestFreshGeneration:
    def test_fresh_variables_never_repeat(self):
        generated = {fresh_variable().name for _ in range(100)}
        assert len(generated) == 100

    def test_fresh_variable_prefix(self):
        assert fresh_variable("Q").name.startswith("Q#")

    def test_fresh_nulls_never_repeat(self):
        generated = {fresh_null().label for _ in range(100)}
        assert len(generated) == 100
