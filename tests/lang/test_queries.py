"""Tests for repro.lang.queries."""

import pytest

from repro.lang.atoms import Atom
from repro.lang.errors import SafetyError
from repro.lang.parser import parse_query
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.substitution import Substitution
from repro.lang.terms import Constant, Null, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
A = Constant("a")


class TestConstruction:
    def test_answer_variable_must_occur_in_body(self):
        with pytest.raises(SafetyError):
            ConjunctiveQuery([X], [Atom("r", [Y])])

    def test_empty_body_rejected(self):
        with pytest.raises(SafetyError):
            ConjunctiveQuery([], [])

    def test_null_in_answer_rejected(self):
        with pytest.raises(SafetyError):
            ConjunctiveQuery([Null("n")], [Atom("r", [X])])

    def test_constant_answers_allowed(self):
        query = ConjunctiveQuery([A, X], [Atom("r", [X])])
        assert query.arity == 2
        assert query.answer_variables == (X,)

    def test_repeated_answer_variables_allowed(self):
        query = ConjunctiveQuery([X, X], [Atom("r", [X])])
        assert query.arity == 2
        assert query.answer_variables == (X,)


class TestVariableClassification:
    def test_existential_variables(self):
        query = parse_query("q(X) :- r(X, Y), s(Y, Z)")
        assert {v.name for v in query.existential_variables()} == {"Y", "Z"}

    def test_nle_variables_are_shared_existentials(self):
        query = parse_query("q(X) :- r(X, Y), s(Y, Z)")
        assert [v.name for v in query.nle_variables()] == ["Y"]

    def test_answer_variables_are_not_nle(self):
        query = parse_query("q(X) :- r(X, Y), s(X, Z)")
        assert query.nle_variables() == ()

    def test_within_atom_repetition_is_not_nle(self):
        # NLE requires occurrence in MORE THAN ONE atom.
        query = parse_query("q() :- r(Y, Y)")
        assert query.nle_variables() == ()

    def test_boolean_query(self):
        assert parse_query("q() :- r(X)").is_boolean()
        assert not parse_query("q(X) :- r(X)").is_boolean()

    def test_constants_include_answer_constants(self):
        query = ConjunctiveQuery([A], [Atom("r", [X, Constant("b")])])
        assert query.constants() == (A, Constant("b"))


class TestTransformation:
    def test_apply_substitution_to_answers_and_body(self):
        query = parse_query("q(X) :- r(X, Y)")
        applied = query.apply(Substitution({X: Z, Y: A}))
        assert applied.answer_terms == (Z,)
        assert applied.body == (Atom("r", [Z, A]),)

    def test_apply_can_ground_answer_terms(self):
        query = parse_query("q(X) :- r(X, Y)")
        applied = query.apply(Substitution({X: A}))
        assert applied.answer_terms == (A,)

    def test_dedupe_body(self):
        query = ConjunctiveQuery([X], [Atom("r", [X]), Atom("r", [X])])
        assert len(query.dedupe_body().body) == 1

    def test_rename_apart_preserves_structure(self):
        query = parse_query("q(X) :- r(X, Y)")
        renamed = query.rename_apart([X, Y])
        assert renamed.canonical() == query.canonical()
        assert {v.name for v in renamed.body_variables()}.isdisjoint({"X", "Y"})


class TestCanonical:
    def test_renaming_invariance(self):
        first = parse_query("q(X) :- r(X, Y), s(Y)")
        second = parse_query("q(U) :- r(U, V), s(V)")
        assert first.canonical() == second.canonical()

    def test_body_order_invariance(self):
        first = parse_query("q(X) :- r(X, Y), s(Y)")
        second = parse_query("q(X) :- s(Y), r(X, Y)")
        assert first.canonical() == second.canonical()

    def test_distinct_structures_distinct_keys(self):
        first = parse_query("q(X) :- r(X, Y)")
        second = parse_query("q(X) :- r(Y, X)")
        assert first.canonical() != second.canonical()

    def test_constant_visible_in_key(self):
        first = parse_query('q() :- r("a", X)')
        second = parse_query('q() :- r("b", X)')
        assert first.canonical() != second.canonical()

    def test_answer_shape_visible_in_key(self):
        free = parse_query("q(X, Y) :- r(X, Y)")
        merged = ConjunctiveQuery([X, X], [Atom("r", [X, X])])
        assert free.canonical() != merged.canonical()


class TestUCQ:
    def test_canonical_duplicates_removed(self):
        first = parse_query("q(X) :- r(X, Y)")
        second = parse_query("q(U) :- r(U, W)")
        ucq = UnionOfConjunctiveQueries([first, second])
        assert len(ucq) == 1

    def test_mixed_arity_rejected(self):
        with pytest.raises(SafetyError):
            UnionOfConjunctiveQueries(
                [parse_query("q(X) :- r(X)"), parse_query("q() :- r(X)")]
            )

    def test_empty_rejected(self):
        with pytest.raises(SafetyError):
            UnionOfConjunctiveQueries([])

    def test_of_lifts_cq(self):
        cq = parse_query("q(X) :- r(X)")
        ucq = UnionOfConjunctiveQueries.of(cq)
        assert len(ucq) == 1
        assert UnionOfConjunctiveQueries.of(ucq) is ucq

    def test_equality_is_set_like(self):
        a = parse_query("q(X) :- r(X)")
        b = parse_query("q(X) :- s(X)")
        assert UnionOfConjunctiveQueries([a, b]) == UnionOfConjunctiveQueries(
            [b, a]
        )
