"""Tests for repro.lang.signature."""

import pytest

from repro.lang.atoms import Atom
from repro.lang.errors import SignatureError
from repro.lang.parser import parse_program, parse_query
from repro.lang.signature import Signature
from repro.lang.terms import Variable

X = Variable("X")


class TestSignature:
    def test_declare_and_lookup(self):
        sig = Signature({"r": 2})
        assert sig["r"] == 2
        assert "r" in sig

    def test_inconsistent_arity_rejected(self):
        sig = Signature({"r": 2})
        with pytest.raises(SignatureError):
            sig.declare("r", 3)

    def test_redeclare_same_arity_ok(self):
        sig = Signature({"r": 2})
        sig.declare("r", 2)
        assert len(sig) == 1

    def test_negative_arity_rejected(self):
        with pytest.raises(SignatureError):
            Signature({"r": -1})

    def test_observe_atom(self):
        sig = Signature()
        sig.observe_atom(Atom("r", [X, X]))
        assert sig["r"] == 2

    def test_from_rules(self):
        rules = parse_program("a(X), b(X, Y) -> c(X, Y, Z).")
        sig = Signature.from_rules(rules)
        assert dict(sig) == {"a": 1, "b": 2, "c": 3}

    def test_observe_query(self):
        sig = Signature()
        sig.observe_query(parse_query("q(X) :- r(X, Y), s(Y)"))
        assert sig["r"] == 2 and sig["s"] == 1

    def test_max_arity(self):
        assert Signature({"a": 1, "b": 4}).max_arity() == 4
        assert Signature().max_arity() == 0

    def test_relations_sorted(self):
        assert Signature({"z": 1, "a": 2}).relations() == ("a", "z")

    def test_cross_object_consistency_enforced(self):
        rules = parse_program("a(X) -> b(X).")
        sig = Signature.from_rules(rules)
        with pytest.raises(SignatureError):
            sig.observe_atom(Atom("b", [X, X]))
