"""Tests for repro.lang.printer."""

import pytest

from repro.lang.parser import parse_program, parse_ucq
from repro.lang.printer import (
    format_answers,
    format_mapping,
    format_program,
    format_table,
    format_ucq,
)
from repro.lang.terms import Constant


class TestFormatProgram:
    def test_one_rule_per_line_with_periods(self):
        program = parse_program("a(X) -> b(X). b(X) -> c(X).")
        text = format_program(program)
        assert text.count("\n") == 1
        assert text.endswith(".")


class TestFormatUCQ:
    def test_one_disjunct_per_line(self):
        ucq = parse_ucq("q(X) :- a(X). q(X) :- b(X).")
        assert len(format_ucq(ucq).splitlines()) == 2


class TestFormatAnswers:
    def test_sorted_rendering(self):
        rows = [(Constant("b"),), (Constant("a"),)]
        assert format_answers(rows).splitlines() == ['("a")', '("b")']

    def test_empty(self):
        assert format_answers([]) == ""


class TestFormatTable:
    def test_alignment(self):
        table = format_table(("name", "n"), [("alpha", 1), ("b", 22)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        # All rows equally wide (ignoring trailing spaces).
        widths = {len(line.rstrip()) <= len(lines[1]) for line in lines}
        assert widths == {True}

    def test_cell_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])


class TestFormatMapping:
    def test_sorted_by_key(self):
        text = format_mapping({"b": 2, "a": 1})
        assert text.splitlines() == ["  a: 1", "  b: 2"]
