"""Tests for repro.lang.parser."""

import pytest

from repro.lang.atoms import Atom
from repro.lang.errors import ParseError
from repro.lang.parser import (
    parse_atom,
    parse_database,
    parse_program,
    parse_query,
    parse_tgd,
    parse_ucq,
)
from repro.lang.terms import Constant, Variable


class TestTermConventions:
    def test_uppercase_is_variable(self):
        atom = parse_atom("r(X, Foo)")
        assert atom.terms == (Variable("X"), Variable("Foo"))

    def test_underscore_start_is_variable(self):
        assert parse_atom("r(_x)").terms == (Variable("_x"),)

    def test_lowercase_is_constant(self):
        assert parse_atom("r(alice)").terms == (Constant("alice"),)

    def test_quoted_string_is_constant(self):
        assert parse_atom('r("hello world")').terms == (
            Constant("hello world"),
        )

    def test_integer_is_constant(self):
        assert parse_atom("r(42, -7)").terms == (Constant(42), Constant(-7))

    def test_zero_arity(self):
        assert parse_atom("flag()").arity == 0


class TestTGDParsing:
    def test_basic_rule(self):
        rule = parse_tgd("a(X), b(X, Y) -> c(Y)")
        assert len(rule.body) == 2
        assert rule.head == (Atom("c", [Variable("Y")]),)

    def test_labeled_rule(self):
        rule = parse_tgd("myrule: a(X) -> b(X)")
        assert rule.label == "myrule"

    def test_multi_atom_head(self):
        rule = parse_tgd("a(X) -> b(X), c(X, Y)")
        assert len(rule.head) == 2

    def test_trailing_period_ok(self):
        assert parse_tgd("a(X) -> b(X).").head[0].relation == "b"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_tgd("a(X) -> b(X) extra")

    def test_missing_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_tgd("a(X), b(X)")


class TestProgramParsing:
    def test_multiline_program_with_comments(self):
        program = parse_program(
            """
            % concept hierarchy
            r1: a(X) -> b(X).
            b(X) -> c(X)  % inline comment
            """
        )
        assert len(program) == 2
        assert program[0].label == "r1"

    def test_auto_labels_assigned(self):
        program = parse_program("a(X) -> b(X). b(X) -> c(X).")
        assert [r.label for r in program] == ["R1", "R2"]

    def test_explicit_labels_kept(self):
        program = parse_program("keep: a(X) -> b(X). b(X) -> c(X).")
        assert program[0].label == "keep"
        assert program[1].label == "R2"

    def test_empty_program(self):
        assert parse_program("  % nothing here\n") == ()


class TestQueryParsing:
    def test_basic_query(self):
        query = parse_query("q(X, Y) :- r(X, Z), s(Z, Y)")
        assert query.name == "q"
        assert query.arity == 2

    def test_boolean_query(self):
        assert parse_query("q() :- r(X)").is_boolean()

    def test_constant_in_body(self):
        query = parse_query('q() :- r("a", X)')
        assert query.body[0].terms[0] == Constant("a")

    def test_constant_answer_position_rejected(self):
        with pytest.raises(ParseError):
            parse_query("q(a) :- r(a)")

    def test_unsafe_query_rejected(self):
        with pytest.raises(Exception):
            parse_query("q(X) :- r(Y)")

    def test_ucq_parsing(self):
        ucq = parse_ucq(
            """
            q(X) :- r(X, Y).
            q(X) :- s(X).
            """
        )
        assert len(ucq) == 2


class TestDatabaseParsing:
    def test_facts(self):
        facts = parse_database("r(a, b). s(1).")
        assert len(facts) == 2
        assert all(f.is_ground() for f in facts)

    def test_non_ground_fact_rejected(self):
        with pytest.raises(ParseError):
            parse_database("r(a, X)")


class TestRoundTrip:
    def test_tgd_str_reparses(self):
        rule = parse_tgd('lbl: a(X, "c"), b(X, X) -> c(X, Y)')
        assert parse_tgd(str(rule)) == rule

    def test_query_str_reparses(self):
        query = parse_query("q(X) :- r(X, Y), s(Y)")
        reparsed = parse_query(str(query))
        assert reparsed.canonical() == query.canonical()

    def test_program_str_reparses(self):
        from repro.lang.printer import format_program

        program = parse_program("a(X) -> b(X). b(X) -> c(X, Y).")
        assert parse_program(format_program(program)) == program

    def test_error_reports_offset(self):
        with pytest.raises(ParseError) as excinfo:
            parse_atom("r(X, $)")
        assert "offset" in str(excinfo.value)
