"""Safe disjunct pruning: unit behaviour and the soundness differential.

The soundness contract: for every backend (in-memory, SQL, chase
oracle) a pruned session returns *exactly* the answers of an unpruned
one, while evaluating strictly fewer disjuncts.
"""

import pytest

from repro import obs
from repro.api import EngineOptions, Session
from repro.checkers import prune_statically_empty, supported_relations
from repro.data.database import Database
from repro.lang.parser import (
    parse_database,
    parse_program,
    parse_query,
    parse_ucq,
)
from repro.obda.mappings import parse_mappings

ONTOLOGY = parse_program(
    "r_prof: professor(X) -> person(X).\n"
    "r_stud: student(X) -> person(X).\n"
    "r_ghost: phantom(X), ledger(X) -> person(X).\n"
)
MAPPINGS = parse_mappings(
    "prof_row(X, D) ~> professor(X).\n"
    "stud_row(X) ~> student(X).\n"
)
DATA = Database(
    parse_database(
        "prof_row(ada, cs).\nprof_row(bob, math).\nstud_row(eve).\n"
    )
)
QUERY = parse_query("q(X) :- person(X)")


class TestSupportedRelations:
    def test_mapping_targets(self):
        assert supported_relations(MAPPINGS, DATA) == {"professor", "student"}

    def test_mappings_filtered_by_empty_sources(self):
        sparse = Database(parse_database("prof_row(ada, cs).\n"))
        assert supported_relations(MAPPINGS, sparse) == {"professor"}

    def test_mappings_without_source_keep_all_targets(self):
        assert supported_relations(MAPPINGS, None) == {"professor", "student"}

    def test_identity_uses_nonempty_relations(self):
        db = Database(parse_database("person(ada).\n"))
        assert supported_relations(None, db) == {"person"}

    def test_neither_is_an_error(self):
        with pytest.raises(ValueError):
            supported_relations(None, None)


class TestPruneStaticallyEmpty:
    UCQ = parse_ucq(
        "q(X) :- professor(X)\n"
        "q(X) :- student(X)\n"
        "q(X) :- phantom(X), ledger(X)"
    )

    def test_drops_unsupported_disjuncts(self):
        result = prune_statically_empty(
            self.UCQ, frozenset({"professor", "student"})
        )
        assert result.kept == 2
        assert result.dropped == 1
        assert result.empty_relations == {"phantom", "ledger"}
        assert len(result.ucq) == 2

    def test_all_pruned_yields_none(self):
        result = prune_statically_empty(self.UCQ, frozenset())
        assert result.ucq is None
        assert result.kept == 0
        assert result.dropped == 3

    def test_nothing_to_prune(self):
        result = prune_statically_empty(
            self.UCQ, frozenset({"professor", "student", "phantom", "ledger"})
        )
        assert result.dropped == 0
        assert result.ucq == self.UCQ

    def test_counter_emitted_on_drop(self):
        with obs.capture() as captured:
            prune_statically_empty(self.UCQ, frozenset({"professor"}))
        assert captured.counter("session.pruned_disjuncts") == 2


class TestDifferentialSoundness:
    """memory == SQL == chase, pruned vs unpruned, fewer disjuncts."""

    @pytest.fixture
    def sessions(self):
        with Session(ONTOLOGY, DATA, mappings=MAPPINGS) as plain, Session(
            ONTOLOGY,
            DATA,
            mappings=MAPPINGS,
            options=EngineOptions(prune_empty=True),
        ) as pruning:
            yield plain, pruning

    def test_strictly_fewer_disjuncts(self, sessions):
        plain, pruning = sessions
        unpruned = plain.prepare(QUERY)
        pruned = pruning.prepare(QUERY).pruned
        assert pruned is not None
        assert pruned.kept < unpruned.result.size
        assert pruned.dropped >= 1

    def test_all_three_paths_agree(self, sessions):
        plain, pruning = sessions
        expected = plain.prepare(QUERY).answer()
        prepared = pruning.prepare(QUERY)
        assert prepared.answer() == expected
        assert prepared.answer(backend="sql") == expected
        assert pruning.answer_chase(QUERY) == expected
        assert plain.prepare(QUERY).answer(backend="sql") == expected
        assert expected  # non-vacuous: the query has answers

    def test_all_pruned_query_is_empty_everywhere(self, sessions):
        plain, pruning = sessions
        ghost = parse_query("g(X) :- phantom(X)")
        assert plain.prepare(ghost).answer() == frozenset()
        prepared = pruning.prepare(ghost)
        assert prepared.pruned is not None and prepared.pruned.ucq is None
        assert prepared.answer() == frozenset()
        assert prepared.answer(backend="sql") == frozenset()
        assert pruning.answer_chase(ghost) == frozenset()

    def test_all_pruned_sql_text_is_arity_correct(self, sessions):
        _, pruning = sessions
        sql = pruning.prepare(parse_query("g(X) :- phantom(X)")).sql
        assert "WHERE 1 = 0" in sql
        assert "a0" in sql

    def test_explicit_database_pruned_against_itself(self, sessions):
        plain, pruning = sessions
        # Bypasses the mappings: supported = the passed database's own
        # non-empty relations.
        db = Database(parse_database("student(zoe).\n"))
        expected = plain.prepare(QUERY).answer(db)
        assert pruning.prepare(QUERY).answer(db) == expected
        assert expected

    def test_pruning_disabled_without_static_knowledge(self):
        with Session(ONTOLOGY, options=EngineOptions(prune_empty=True)) as session:
            assert session.pruning_relations() is None
            assert session.prepare(QUERY).pruned is None

    def test_prune_empty_off_by_default(self, sessions):
        plain, _ = sessions
        assert plain.prune_empty is False
        assert plain.pruning_relations() is None
