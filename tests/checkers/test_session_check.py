"""``Session.check()`` and the engine's pre-flight estimate wiring."""

import warnings

import pytest

from repro import obs
from repro.api import EngineOptions, Session
from repro.checkers import CheckConfig, RewritingBlowupWarning, render_check
from repro.data.database import Database
from repro.lang.parser import parse_database, parse_program, parse_query
from repro.obda.mappings import parse_mappings
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.engine import FORewritingEngine

ONTOLOGY = parse_program(
    "r_prof: professor(X) -> person(X).\n"
    "r_dead: teaches(X, C) -> course(C).\n"
    "r_ghost: registry(X) -> person(X).\n"
)
MAPPINGS = parse_mappings("prof_row(X, D) ~> professor(X).\n")
DATA = Database(parse_database("prof_row(ada, cs).\n"))
QUERY = parse_query("q(X) :- person(X)")

FANOUT = parse_program(
    "\n".join(f"c{i}: a{i}(X) -> p(X)." for i in range(1, 13))
    + "\nd1: b1(X) -> a1(X).\nd2: b2(X) -> b1(X).\n"
    + "d3: b3(X) -> b2(X).\nd4: b4(X) -> b3(X).\n"
)


class TestSessionCheck:
    def test_workload_defaults_to_prepared_queries(self):
        with Session(ONTOLOGY, DATA, mappings=MAPPINGS) as session:
            session.prepare(QUERY)
            report = session.check()
        codes = {d.code for d in report.diagnostics}
        assert "RL100" in codes  # r_dead
        assert "RL107" not in codes

    def test_no_prepared_queries_reports_no_workload(self):
        with Session(ONTOLOGY, DATA, mappings=MAPPINGS) as session:
            report = session.check()
        assert any(d.code == "RL107" for d in report.diagnostics)

    def test_explicit_workload_accepts_text(self):
        with Session(ONTOLOGY, DATA, mappings=MAPPINGS) as session:
            report = session.check(queries=["q(X) :- person(X)"])
        assert any(d.code == "RL100" for d in report.diagnostics)

    def test_config_forwarded(self):
        with Session(ONTOLOGY, DATA, mappings=MAPPINGS) as session:
            report = session.check(
                queries=[QUERY],
                config=CheckConfig(disabled=frozenset({"RL100", "RL101"})),
            )
        codes = {d.code for d in report.diagnostics}
        assert "RL100" not in codes

    def test_session_budget_is_the_default_estimate_budget(self):
        budget = RewritingBudget(max_depth=50, max_cqs=5, strict=False)
        with Session(FANOUT, options=EngineOptions(budget=budget)) as session:
            report = session.check(queries=["q(X) :- p(X)"])
        assert any(d.code == "RL105" for d in report.diagnostics)

    def test_report_renders_like_the_cli(self):
        with Session(ONTOLOGY, DATA, mappings=MAPPINGS) as session:
            session.prepare(QUERY)
            out = render_check(session.check(), "text")
        assert "RL100" in out and "<session>" in out

    def test_dataless_mappingless_session_checks(self):
        with Session(ONTOLOGY) as session:
            report = session.check(queries=[QUERY])
        codes = {d.code for d in report.diagnostics}
        # Coverage passes need mappings or data; workload passes run.
        assert "RL102" not in codes
        assert "RL100" in codes


class TestPreflightEstimate:
    def test_warns_before_blowup(self):
        budget = RewritingBudget(max_depth=3, max_cqs=5, strict=False)
        engine = FORewritingEngine(
            FANOUT, budget=budget, preflight_estimate=True
        )
        with pytest.warns(RewritingBlowupWarning, match="offending rule chain"):
            engine._rewrite(parse_query("q(X) :- p(X)"))

    def test_emits_observability_event(self):
        budget = RewritingBudget(max_depth=3, max_cqs=5, strict=False)
        engine = FORewritingEngine(
            FANOUT, budget=budget, preflight_estimate=True
        )
        with obs.capture() as captured, warnings.catch_warnings():
            warnings.simplefilter("ignore", RewritingBlowupWarning)
            engine._rewrite(parse_query("q(X) :- p(X)"))
        (event,) = captured.events("engine.preflight_estimate")
        assert event["attrs"]["bound"] > 5

    def test_quiet_when_bound_fits(self):
        engine = FORewritingEngine(ONTOLOGY, preflight_estimate=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RewritingBlowupWarning)
            engine._rewrite(QUERY)

    def test_off_by_default(self):
        engine = FORewritingEngine(
            FANOUT, budget=RewritingBudget(max_depth=3, max_cqs=5, strict=False)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", RewritingBlowupWarning)
            engine._rewrite(parse_query("q(X) :- p(X)"))

    def test_session_flag_reaches_engine(self):
        budget = RewritingBudget(max_depth=3, max_cqs=5, strict=False)
        with Session(
            FANOUT,
            options=EngineOptions(budget=budget, preflight_estimate=True),
        ) as session:
            with pytest.warns(RewritingBlowupWarning):
                session.prepare("q(X) :- p(X)").result

    def test_cache_hits_skip_the_preflight(self):
        budget = RewritingBudget(max_depth=3, max_cqs=5, strict=False)
        engine = FORewritingEngine(
            FANOUT, budget=budget, preflight_estimate=True
        )
        query = parse_query("q(X) :- p(X)")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RewritingBlowupWarning)
            engine._rewrite(query)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RewritingBlowupWarning)
            engine._rewrite(query)  # cached: no second estimate
