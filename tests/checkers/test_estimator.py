"""The static rewriting-size estimator (AG(P) fan-out bound)."""

from repro.checkers import (
    BlowupEstimate,
    RewritingBlowupWarning,
    estimate_disjunct_bound,
)
from repro.checkers.estimator import ESTIMATE_CAP, estimate_combination_bound
from repro.lang.parser import parse_program, parse_query
from repro.rewriting.budget import RewritingBudget

CHAIN = parse_program(
    "c1: a1(X) -> p(X).\n"
    "c2: a2(X) -> p(X).\n"
    "d1: b1(X) -> a1(X).\n"
    "d2: b2(X) -> b1(X).\n"
)


class TestAcyclic:
    def test_per_round_counts_derivers_per_atom(self):
        estimate = estimate_disjunct_bound(parse_query("q(X) :- p(X)"), CHAIN)
        # p has 2 derivers -> 1 + 2 per round.
        assert estimate.per_round == 3

    def test_depth_is_longest_derivation_chain(self):
        estimate = estimate_disjunct_bound(parse_query("q(X) :- p(X)"), CHAIN)
        assert estimate.depth == 3
        assert estimate.chain == ("c1", "d1", "d2")
        assert not estimate.cyclic

    def test_bound_is_per_round_to_the_depth(self):
        estimate = estimate_disjunct_bound(parse_query("q(X) :- p(X)"), CHAIN)
        assert estimate.bound == 3**3

    def test_multi_atom_query_sums_derivers(self):
        estimate = estimate_disjunct_bound(
            parse_query("q(X) :- p(X), a1(X)"), CHAIN
        )
        # 1 + (2 derivers of p) + (1 deriver of a1).
        assert estimate.per_round == 4

    def test_relation_without_derivers(self):
        estimate = estimate_disjunct_bound(
            parse_query("q(X) :- unknown(X)"), CHAIN
        )
        assert estimate == BlowupEstimate(
            bound=1, per_round=1, depth=0, cyclic=False, chain=()
        )

    def test_ucq_bounds_add_up(self):
        from repro.lang.queries import UnionOfConjunctiveQueries

        narrow = parse_query("q(X) :- p(X)")
        wide = parse_query("q(X) :- p(X), p(Y)")
        union = UnionOfConjunctiveQueries([narrow, wide])
        total = estimate_disjunct_bound(union, CHAIN)
        parts = [
            estimate_disjunct_bound(cq, CHAIN).bound for cq in (narrow, wide)
        ]
        assert total.bound == sum(parts)
        # The reported shape is the worst disjunct's.
        assert total.per_round == 5


class TestCyclic:
    RULES = parse_program(
        "r1: p(X) -> s(X).\n"
        "r2: s(X) -> p(X).\n"
    )

    def test_cycle_uses_budget_depth(self):
        estimate = estimate_disjunct_bound(
            parse_query("q(X) :- p(X)"),
            self.RULES,
            budget=RewritingBudget(max_depth=7, max_cqs=10, strict=False),
        )
        assert estimate.cyclic
        assert estimate.depth == 7
        assert estimate.bound == 2**7

    def test_cycle_uses_default_depth_without_max(self):
        estimate = estimate_disjunct_bound(
            parse_query("q(X) :- p(X)"),
            self.RULES,
            budget=RewritingBudget(max_depth=None, max_cqs=10, strict=False),
            default_depth=4,
        )
        assert estimate.depth == 4

    def test_cycle_chain_names_the_cycle_rules(self):
        estimate = estimate_disjunct_bound(
            parse_query("q(X) :- p(X)"), self.RULES
        )
        assert set(estimate.chain) == {"r1", "r2"}


class TestCapAndRendering:
    def test_bound_saturates_at_cap(self):
        wide = parse_program(
            "\n".join(f"c{i}: a{i}(X) -> p(X)." for i in range(1, 100))
        )
        estimate = estimate_disjunct_bound(
            parse_query("q(X) :- p(X), p(Y), p(Z)"),
            list(wide) + list(parse_program("loop: p(X) -> a1(X).")),
            budget=RewritingBudget(max_depth=50, max_cqs=10, strict=False),
        )
        assert estimate.capped
        assert estimate.bound == ESTIMATE_CAP
        assert estimate.render_bound() == ">=10^18"

    def test_small_bound_renders_tilde(self):
        estimate = estimate_disjunct_bound(parse_query("q(X) :- p(X)"), CHAIN)
        assert estimate.render_bound() == f"~{3**3}"

    def test_unlabeled_rules_get_defaulted_labels(self):
        # The parser assigns R1, R2, ... to unlabeled rules; rules built
        # without any label fall back to #index inside the estimator.
        rules = parse_program("a(X) -> p(X).\nb(X) -> a(X).\n")
        estimate = estimate_disjunct_bound(parse_query("q(X) :- p(X)"), rules)
        assert estimate.chain == ("R1", "R2")

    def test_warning_category(self):
        assert issubclass(RewritingBlowupWarning, UserWarning)


class TestCombinationBound:
    """Per-atom combination estimate: the ``auto`` target's signal."""

    def test_wide_conjunction_is_exponential(self):
        # n joined atoms with k derivers each: (k+1)^n combinations,
        # invisible to the depth-based bound (every chain has length 1).
        k = 3
        for n in (1, 3, 5):
            rules = parse_program(
                "\n".join(
                    f"a{i}_{j}(X) -> c{i}(X)."
                    for i in range(1, n + 1)
                    for j in range(1, k + 1)
                )
            )
            body = ", ".join(f"c{i}(X)" for i in range(1, n + 1))
            query = parse_query(f"q(X) :- {body}")
            assert estimate_combination_bound(query, rules) == (k + 1) ** n

    def test_underivable_atom_counts_one(self):
        assert (
            estimate_combination_bound(parse_query("q(X) :- z(X)"), CHAIN)
            == 1
        )

    def test_chain_multiplies_through(self):
        # p <- a1 <- b1 <- b2: A(p) = 1 + A(a1) + A(a2) = 1 + 3 + 1 = 5.
        query = parse_query("q(X) :- p(X)")
        assert estimate_combination_bound(query, CHAIN) == 5

    def test_cycle_saturates_at_cap(self):
        rules = parse_program("loop1: p(X) -> r(X). loop2: r(X) -> p(X).")
        query = parse_query("q(X) :- p(X)")
        assert estimate_combination_bound(query, rules) == ESTIMATE_CAP

    def test_ucq_sums_over_disjuncts(self):
        from repro.lang.queries import UnionOfConjunctiveQueries

        union = UnionOfConjunctiveQueries(
            [parse_query("q(X) :- p(X)"), parse_query("q(X) :- z(X)")]
        )
        assert estimate_combination_bound(union, CHAIN) == 5 + 1

    def test_deterministic_in_inputs(self):
        query = parse_query("q(X) :- p(X), p(Y)")
        assert estimate_combination_bound(
            query, CHAIN
        ) == estimate_combination_bound(query, list(reversed(CHAIN)))
