"""The ``repro check`` command: formats, exit codes, seeded example.

The exit-code contract mirrors ``repro lint``: 0 clean (warnings
without ``--strict`` included), 1 findings gated by severity, 2 on
unreadable/malformed input.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SEEDED = str(REPO_ROOT / "examples" / "check_project")

CLEAN_ONTOLOGY = "r1: professor(X) -> person(X).\n"
CLEAN_QUERIES = "q(X) :- person(X).\n"
CLEAN_MAPPINGS = "prof_row(X, D) ~> professor(X).\nperson_row(X) ~> person(X).\n"
CLEAN_DATA = "prof_row(ada, cs).\nperson_row(bob).\n"

WARNING_ONTOLOGY = (
    "r1: professor(X) -> person(X).\n"
    "r2: teaches(X, C) -> course(C).\n"  # dead for the workload
)
ERROR_MAPPINGS = "prof_row(X, D) ~> professor(X, D, D).\n"  # arity clash


@pytest.fixture
def project(tmp_path):
    def _build(
        ontology=CLEAN_ONTOLOGY,
        queries=CLEAN_QUERIES,
        mappings=CLEAN_MAPPINGS,
        data=CLEAN_DATA,
    ):
        manifest = {"ontology": "o.dlp"}
        (tmp_path / "o.dlp").write_text(ontology)
        for key, name, text in (
            ("queries", "q.dlp", queries),
            ("mappings", "m.dlp", mappings),
            ("data", "d.dlp", data),
        ):
            if text is not None:
                (tmp_path / name).write_text(text)
                manifest[key] = name
        (tmp_path / "project.json").write_text(json.dumps(manifest))
        return str(tmp_path)

    return _build


class TestExitCodeMatrix:
    def test_clean_project_exits_zero(self, project, capsys):
        assert main(["check", project()]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_warnings_exit_zero_without_strict(self, project):
        assert main(["check", project(ontology=WARNING_ONTOLOGY)]) == 0

    def test_strict_promotes_warnings(self, project):
        assert main(["check", project(ontology=WARNING_ONTOLOGY), "--strict"]) == 1

    def test_errors_always_nonzero(self, project):
        assert main(["check", project(mappings=ERROR_MAPPINGS)]) == 1

    def test_unreadable_project_exits_two(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "missing")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_manifest_exits_two(self, tmp_path):
        (tmp_path / "project.json").write_text("{oops")
        assert main(["check", str(tmp_path)]) == 2

    def test_member_parse_error_exits_two(self, tmp_path):
        (tmp_path / "project.json").write_text('{"ontology": "o.dlp"}')
        (tmp_path / "o.dlp").write_text("r1: broken( -> x.\n")
        assert main(["check", str(tmp_path)]) == 2


class TestSeededExample:
    """The in-repo example project must showcase the full catalogue."""

    def test_expected_codes(self, capsys):
        assert main(["check", SEEDED]) == 1  # RL103 is an error
        out = capsys.readouterr().out
        for code in ("RL100", "RL102", "RL103", "RL105", "RL106"):
            assert code in out, f"{code} missing from seeded report"

    def test_dead_rule_named(self, capsys):
        main(["check", SEEDED])
        out = capsys.readouterr().out
        assert "r_dead" in out

    def test_offending_chain_named(self, capsys):
        main(["check", SEEDED])
        out = capsys.readouterr().out
        assert "offending rule chain" in out
        assert "b12 -> d1 -> d2 -> d3 -> d4" in out

    def test_json_format(self, capsys):
        main(["check", SEEDED, "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in doc["diagnostics"]}
        assert {"RL100", "RL102", "RL103", "RL105", "RL106"} <= codes

    def test_disable_code(self, capsys):
        main(["check", SEEDED, "--disable", "RL106"])
        assert "RL106" not in capsys.readouterr().out

    def test_budget_flag_silences_blowup(self, capsys):
        main(["check", SEEDED, "--max-cqs", "100000000"])
        assert "RL105" not in capsys.readouterr().out

    def test_assumed_depth_flag_parses(self, capsys):
        assert main(["check", SEEDED, "--assumed-depth", "3"]) == 1


class TestSarifStructure:
    """SARIF 2.1.0 output, structurally valid for code-scanning upload."""

    def sarif(self, capsys, *args):
        main(["check", SEEDED, "--format", "sarif", *args])
        return json.loads(capsys.readouterr().out)

    def test_version_and_schema(self, capsys):
        doc = self.sarif(capsys)
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]

    def test_tool_name_is_check_not_lint(self, capsys):
        doc = self.sarif(capsys)
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-check"

    def test_rules_catalogue_is_rl1xx(self, capsys):
        doc = self.sarif(capsys)
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        ids = [rule["id"] for rule in rules]
        assert ids == sorted(ids)
        assert all(rule_id.startswith("RL1") for rule_id in ids)
        assert all("name" in rule for rule in rules)

    def test_results_reference_rules_by_index(self, capsys):
        doc = self.sarif(capsys)
        (run,) = doc["runs"]
        ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert run["results"]
        for result in run["results"]:
            assert ids[result["ruleIndex"]] == result["ruleId"]
            assert result["level"] in ("error", "warning", "note")
            assert result["message"]["text"]

    def test_spanned_results_carry_regions(self, capsys):
        doc = self.sarif(capsys)
        located = [
            r for r in doc["runs"][0]["results"] if "locations" in r
        ]
        assert located  # RL100 carries the dead rule's span
        physical = located[0]["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"].endswith("ontology.dlp")
        assert physical["region"]["startLine"] >= 1
