"""The RL1xx check passes, driven over in-memory projects."""

import pytest

from repro.checkers import (
    CHECK_REGISTRY,
    CheckConfig,
    Project,
    all_check_codes,
    check_code_names,
    check_project,
    parse_queries,
)
from repro.data.database import Database
from repro.lang.parser import parse_database, parse_program
from repro.lint.diagnostics import Severity
from repro.obda.mappings import parse_mappings
from repro.rewriting.budget import RewritingBudget


def build(ontology, queries="", mappings=None, data=None):
    return Project(
        rules=parse_program(ontology),
        queries=parse_queries(queries),
        mappings=parse_mappings(mappings) if mappings is not None else None,
        data=Database(parse_database(data)) if data is not None else None,
        path="mem.dlp",
        source_text=ontology,
    )


def codes(report):
    return sorted({d.code for d in report.diagnostics})


def findings(report, code):
    return [d for d in report.diagnostics if d.code == code]


class TestWorkloadPasses:
    def test_rl100_dead_rule(self):
        report = check_project(
            build(
                "r1: professor(X) -> person(X).\n"
                "r2: teaches(X, C) -> course(C).\n",
                queries="q(X) :- person(X).\n",
            )
        )
        (dead,) = findings(report, "RL100")
        assert "r2" in dead.message and "course" in dead.message
        assert dead.severity is Severity.WARNING
        assert dead.span is not None

    def test_rl100_reachability_is_transitive(self):
        report = check_project(
            build(
                "r1: professor(X) -> person(X).\n"
                "r2: advises(X, Y) -> professor(X).\n",
                queries="q(X) :- person(X).\n",
            )
        )
        assert not findings(report, "RL100")

    def test_rl100_falls_back_on_multi_atom_heads(self):
        # Multi-atom heads are outside the position graph's fragment;
        # the pass falls back to per-query relevance filtering.
        report = check_project(
            build(
                "r1: employee(X) -> person(X), worker(X).\n"
                "r2: teaches(X, C) -> course(C).\n",
                queries="q(X) :- person(X).\n",
            )
        )
        labels = {d.rule for d in findings(report, "RL100")}
        assert "r2" in labels
        assert "r1" not in labels

    def test_rl101_unconsumed_relation(self):
        report = check_project(
            build(
                "r1: professor(X) -> person(X).\n"
                "r2: professor(X) -> tenured(X).\n",
                queries="q(X) :- person(X).\n",
            )
        )
        (unconsumed,) = findings(report, "RL101")
        assert "tenured" in unconsumed.message

    def test_rl107_no_workload_skips_workload_passes(self):
        report = check_project(
            build("r1: teaches(X, C) -> course(C).\n")
        )
        assert findings(report, "RL107")
        assert not findings(report, "RL100")
        assert not findings(report, "RL101")


class TestCoveragePasses:
    def test_rl102_unmapped_underivable_relation(self):
        report = check_project(
            build(
                "r1: professor(X), registry(X) -> person(X).\n",
                queries="q(X) :- person(X).\n",
                mappings="prof_row(X, D) ~> professor(X).\n",
                data="prof_row(ada, cs).\n",
            )
        )
        (unmapped,) = findings(report, "RL102")
        assert "registry" in unmapped.message

    def test_rl102_needs_mappings_or_data(self):
        report = check_project(
            build(
                "r1: professor(X), registry(X) -> person(X).\n",
                queries="q(X) :- person(X).\n",
            )
        )
        assert not findings(report, "RL102")

    def test_rl103_target_arity_vs_ontology(self):
        report = check_project(
            build(
                "r1: advises(X, Y) -> professor(X).\n",
                mappings="adv_row(A, S) ~> advises(A).\n",
            )
        )
        assert any(
            "advises/2" in d.message for d in findings(report, "RL103")
        )
        assert report.exit_code(strict=False) == 1

    def test_rl103_targets_disagree_with_each_other(self):
        report = check_project(
            build(
                "r1: person(X) -> human(X).\n",
                mappings=(
                    "a_row(X) ~> friend(X).\n"
                    "b_row(X, Y) ~> friend(X, Y).\n"
                ),
            )
        )
        assert any(
            "disagree" in d.message for d in findings(report, "RL103")
        )

    def test_rl103_source_arity_vs_data(self):
        report = check_project(
            build(
                "r1: professor(X) -> person(X).\n",
                mappings="prof_row(X) ~> professor(X).\n",
                data="prof_row(ada, cs).\n",
            )
        )
        assert any(
            "2 columns" in d.message for d in findings(report, "RL103")
        )

    def test_rl104_source_relation_missing(self):
        report = check_project(
            build(
                "r1: professor(X) -> person(X).\n",
                mappings="prof_tbl(X, D) ~> professor(X).\n",
                data="other_tbl(ada).\n",
            )
        )
        (missing,) = findings(report, "RL104")
        assert "prof_tbl" in missing.message
        # RL103's source-side check defers to RL104 here.
        assert not findings(report, "RL103")

    def test_rl106_derivable_but_statically_empty(self):
        report = check_project(
            build(
                "r1: professor(X) -> person(X).\n"
                "r2: dean(X) -> professor(X).\n",
                queries="q(X) :- person(X).\n",
                mappings="dean_row(X) ~> dean(X).\n",
                data="dean_row(ada).\n",
            )
        )
        relations = {
            d.message.split()[1] for d in findings(report, "RL106")
        }
        assert {"person", "professor"} <= relations
        assert all(
            d.severity is Severity.INFO for d in findings(report, "RL106")
        )


class TestEstimatePass:
    ONTOLOGY = (
        "c1: a1(X) -> p(X).\n"
        "c2: a2(X) -> p(X).\n"
        "c3: a3(X) -> p(X).\n"
        "d1: b1(X) -> a1(X).\n"
        "d2: b2(X) -> b1(X).\n"
    )

    def test_rl105_fires_when_bound_exceeds_budget(self):
        report = check_project(
            build(self.ONTOLOGY, queries="q(X) :- p(X).\n"),
            CheckConfig(budget=RewritingBudget(max_depth=50, max_cqs=10, strict=False)),
        )
        (blowup,) = findings(report, "RL105")
        assert "q" in blowup.message
        assert any("offending rule chain" in n for n in blowup.notes)

    def test_rl105_recommends_the_datalog_target(self):
        report = check_project(
            build(self.ONTOLOGY, queries="q(X) :- p(X).\n"),
            CheckConfig(budget=RewritingBudget(max_depth=50, max_cqs=10, strict=False)),
        )
        (blowup,) = findings(report, "RL105")
        # The remediation note names the second rewriting target: a
        # blowup warning is exactly the case target='datalog' solves.
        assert any("datalog target available" in n for n in blowup.notes)
        assert "'datalog'/'auto'" in blowup.hint

    def test_rl105_quiet_under_roomy_budget(self):
        report = check_project(
            build(self.ONTOLOGY, queries="q(X) :- p(X).\n"),
            CheckConfig(
                budget=RewritingBudget(max_depth=50, max_cqs=100_000, strict=False)
            ),
        )
        assert not findings(report, "RL105")


class TestConfigAndRegistry:
    def test_disable_suppresses_code(self):
        project = build(
            "r1: professor(X) -> person(X).\n"
            "r2: professor(X) -> tenured(X).\n",
            queries="q(X) :- person(X).\n",
        )
        noisy = check_project(project)
        quiet = check_project(
            project, CheckConfig(disabled=frozenset({"RL101"}))
        )
        assert findings(noisy, "RL101")
        assert not findings(quiet, "RL101")

    def test_stage_selection(self):
        project = build(
            "r1: professor(X), registry(X) -> person(X).\n"
            "r2: teaches(X, C) -> course(C).\n",
            queries="q(X) :- person(X).\n",
            mappings="prof_row(X, D) ~> professor(X).\n",
            data="prof_row(ada, cs).\n",
        )
        workload_only = check_project(
            project, CheckConfig(stages=("workload",))
        )
        assert findings(workload_only, "RL100")
        assert not findings(workload_only, "RL102")

    def test_registry_codes_unique_and_catalogued(self):
        assert len({spec.code for spec in CHECK_REGISTRY}) == len(CHECK_REGISTRY)
        assert all_check_codes() == tuple(sorted(check_code_names()))
        assert all(
            code.startswith("RL1") or code.startswith("RL2")
            for code in all_check_codes()
        )

    def test_stages_are_known(self):
        assert {spec.stage for spec in CHECK_REGISTRY} == {
            "workload",
            "coverage",
            "estimate",
            "interaction",
        }

    def test_diagnostics_sorted_for_rendering(self):
        report = check_project(
            build(
                "r1: professor(X), registry(X) -> person(X).\n"
                "r2: teaches(X, C) -> course(C).\n",
                queries="q(X) :- person(X).\n",
                mappings="prof_row(X, D) ~> professor(X).\n",
                data="prof_row(ada, cs).\n",
            )
        )
        assert len(report.diagnostics) >= 3
        assert report.path == "mem.dlp"


@pytest.mark.parametrize("code", all_check_codes())
def test_every_code_has_a_kebab_name(code):
    name = check_code_names()[code]
    assert name and name == name.lower() and " " not in name
