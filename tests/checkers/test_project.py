"""Project manifests: loading, member parsing and failure modes."""

import json

import pytest

from repro.checkers import Project, load_project, parse_queries
from repro.lang.errors import ReproError
from repro.lang.parser import parse_program

ONTOLOGY = "R1: professor(X) -> person(X).\n"
QUERIES = "q1(X) :- person(X).\nq2(X, Y) :- advises(X, Y).\n"
MAPPINGS = "prof_row(X, D) ~> professor(X).\n"
DATA = "prof_row(ada, cs).\n"


@pytest.fixture
def project_dir(tmp_path):
    def _build(manifest: dict, **files: str):
        for name, text in files.items():
            (tmp_path / name).write_text(text)
        (tmp_path / "project.json").write_text(json.dumps(manifest))
        return tmp_path

    return _build


class TestLoadProject:
    def test_full_project(self, project_dir):
        path = project_dir(
            {
                "ontology": "o.dlp",
                "queries": "q.dlp",
                "mappings": "m.dlp",
                "data": "d.dlp",
            },
            **{"o.dlp": ONTOLOGY, "q.dlp": QUERIES, "m.dlp": MAPPINGS, "d.dlp": DATA},
        )
        project = load_project(path)
        assert len(project.rules) == 1
        assert len(project.queries) == 2
        assert project.mappings is not None and len(project.mappings) == 1
        assert project.data is not None and project.data.count("prof_row") == 1
        assert project.source_text == ONTOLOGY

    def test_ontology_only(self, project_dir):
        path = project_dir({"ontology": "o.dlp"}, **{"o.dlp": ONTOLOGY})
        project = load_project(path)
        assert project.queries == ()
        assert project.mappings is None
        assert project.data is None

    def test_directory_and_manifest_path_equivalent(self, project_dir):
        path = project_dir({"ontology": "o.dlp"}, **{"o.dlp": ONTOLOGY})
        by_dir = load_project(path)
        by_file = load_project(path / "project.json")
        assert by_dir.rules == by_file.rules

    def test_report_path_is_the_ontology_member(self, project_dir):
        path = project_dir({"ontology": "o.dlp"}, **{"o.dlp": ONTOLOGY})
        assert load_project(path).path.endswith("o.dlp")

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ReproError, match="manifest"):
            load_project(tmp_path)

    def test_malformed_json(self, tmp_path):
        (tmp_path / "project.json").write_text("{not json")
        with pytest.raises(ReproError, match="malformed"):
            load_project(tmp_path)

    def test_non_object_manifest(self, tmp_path):
        (tmp_path / "project.json").write_text('["ontology"]')
        with pytest.raises(ReproError, match="JSON object"):
            load_project(tmp_path)

    def test_unknown_keys_rejected(self, project_dir):
        path = project_dir(
            {"ontology": "o.dlp", "rules": "o.dlp"}, **{"o.dlp": ONTOLOGY}
        )
        with pytest.raises(ReproError, match="unknown project manifest keys"):
            load_project(path)

    def test_missing_ontology_key(self, tmp_path):
        (tmp_path / "project.json").write_text("{}")
        with pytest.raises(ReproError, match="ontology"):
            load_project(tmp_path)

    def test_missing_member_file(self, project_dir):
        path = project_dir({"ontology": "nope.dlp"})
        with pytest.raises(ReproError, match="cannot read project ontology"):
            load_project(path)

    def test_non_string_member_path(self, project_dir):
        path = project_dir({"ontology": 3})
        with pytest.raises(ReproError, match="path string"):
            load_project(path)

    def test_parse_error_in_member(self, project_dir):
        path = project_dir(
            {"ontology": "o.dlp", "queries": "q.dlp"},
            **{"o.dlp": ONTOLOGY, "q.dlp": "q1(X :- person(X).\n"},
        )
        with pytest.raises(ReproError, match="q.dlp"):
            load_project(path)


class TestParseQueries:
    def test_mixed_arities_allowed(self):
        queries = parse_queries(QUERIES)
        assert [q.arity for q in queries] == [1, 2]
        assert [q.name for q in queries] == ["q1", "q2"]

    def test_comments_and_blank_lines(self):
        queries = parse_queries("% workload\n\nq(X) :- r(X).\n")
        assert len(queries) == 1

    def test_empty_workload(self):
        assert parse_queries("% nothing here\n") == ()


class TestProjectValue:
    def test_frozen(self):
        project = Project(rules=parse_program(ONTOLOGY), queries=())
        with pytest.raises(AttributeError):
            project.path = "elsewhere"
