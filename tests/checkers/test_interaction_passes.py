"""The RL2xx constraint-interaction passes and their CLI surface."""

import json
from pathlib import Path

import pytest

from repro.checkers import Project, check_project, parse_queries
from repro.cli import main
from repro.lang.parser import parse_program
from repro.lint.diagnostics import Severity
from repro.workloads.interaction import SPLIT_RULES_TEXT, ja_not_wa

REPO_ROOT = Path(__file__).resolve().parents[2]

JA_NOT_WA_TEXT = (
    "C1: s(X) -> r(X, Y).\n"
    "C2: r(X, Y) -> t(Y).\n"
    "C3: t(X), u(X) -> s(X).\n"
)
INSEPARABLE_TEXT = "L: p(X) -> q(X, Y).\nM: q(X, Y) -> p(Y).\n"


def build(ontology, queries=""):
    return Project(
        rules=parse_program(ontology),
        queries=parse_queries(queries),
        mappings=None,
        data=None,
        path="mem.dlp",
        source_text=ontology,
    )


def findings(report, code):
    return [d for d in report.diagnostics if d.code == code]


class TestInteractionPasses:
    def test_weakly_acyclic_project_is_silent(self):
        report = check_project(
            build(
                "r1: professor(X) -> person(X).\n",
                queries="q(X) :- person(X).\n",
            )
        )
        for code in ("RL200", "RL201", "RL202", "RL203"):
            assert not findings(report, code)

    def test_rl200_lattice_admitted(self):
        report = check_project(build(JA_NOT_WA_TEXT))
        (admitted,) = findings(report, "RL200")
        assert admitted.severity is Severity.INFO
        assert "joint-acyclicity" in admitted.message
        assert any("weak-acyclicity witness" in n for n in admitted.notes)
        assert any("special" in n for n in admitted.notes)
        # Rule provenance on the witness edges.
        assert any("via" in n for n in admitted.notes)
        assert admitted.rule in {"C1", "C2", "C3"}
        assert admitted.span is not None
        # Terminating sets never trip the non-terminating passes.
        for code in ("RL201", "RL202", "RL203"):
            assert not findings(report, code)

    def test_rl201_and_rl202_on_separable_set(self):
        report = check_project(build(SPLIT_RULES_TEXT))
        (diverging,) = findings(report, "RL201")
        assert diverging.severity is Severity.WARNING
        assert any("witness" in n for n in diverging.notes)
        assert any(
            "super-weak-acyclicity: fails" in n for n in diverging.notes
        )
        (split,) = findings(report, "RL202")
        assert split.severity is Severity.INFO
        assert "chase-safe core" in split.message
        core_note, residual_note = split.notes[0], split.notes[1]
        assert core_note.startswith("core: ")
        assert {"R1", "R2", "R3"} <= set(core_note[6:].split(", "))
        assert residual_note.startswith("residual: ")
        assert not findings(report, "RL203")

    def test_rl203_on_inseparable_set(self):
        report = check_project(build(INSEPARABLE_TEXT))
        assert findings(report, "RL201")
        (stuck,) = findings(report, "RL203")
        assert stuck.severity is Severity.WARNING
        assert "inseparable" in stuck.message
        assert not findings(report, "RL202")

    def test_interaction_stage_can_be_deselected(self):
        from repro.checkers import CheckConfig

        report = check_project(
            build(SPLIT_RULES_TEXT),
            CheckConfig(stages=("workload", "coverage", "estimate")),
        )
        for code in ("RL200", "RL201", "RL202", "RL203"):
            assert not findings(report, code)


@pytest.fixture
def project(tmp_path):
    def _build(ontology):
        (tmp_path / "o.dlp").write_text(ontology)
        (tmp_path / "project.json").write_text(
            json.dumps({"ontology": "o.dlp"})
        )
        return str(tmp_path)

    return _build


class TestInteractionCli:
    def test_rl201_is_warning_gated_by_strict(self, project):
        path = project(SPLIT_RULES_TEXT)
        assert main(["check", path]) == 0
        assert main(["check", path, "--strict"]) == 1

    def test_text_output_carries_certificate(self, project, capsys):
        main(["check", project(SPLIT_RULES_TEXT)])
        out = capsys.readouterr().out
        assert "RL201" in out and "RL202" in out
        assert "witness" in out

    def test_json_output(self, project, capsys):
        main(["check", project(JA_NOT_WA_TEXT), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        by_code = {d["code"]: d for d in doc["diagnostics"]}
        assert "RL200" in by_code
        notes = by_code["RL200"]["notes"]
        assert any("weak-acyclicity witness" in n for n in notes)

    def test_sarif_output(self, project, capsys):
        main(
            ["check", project(INSEPARABLE_TEXT), "--format", "sarif"]
        )
        doc = json.loads(capsys.readouterr().out)
        (run,) = doc["runs"]
        ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"RL201", "RL203"} <= ids
        result_ids = {r["ruleId"] for r in run["results"]}
        assert {"RL201", "RL203"} <= result_ids
        for result in run["results"]:
            assert result["level"] in ("error", "warning", "note")

    def test_disable_rl200(self, project, capsys):
        main(["check", project(JA_NOT_WA_TEXT), "--disable", "RL200"])
        assert "RL200" not in capsys.readouterr().out
