"""Diagnostic records, report ordering and exit-code gating."""

from repro.lang.spans import Span
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.engine import SECONDARY_CODES, all_codes, code_names


def _diag(code="RL001", severity=Severity.WARNING, start=None, message="m"):
    span = None
    if start is not None:
        span = Span(
            start=start,
            end=start + 1,
            line=1,
            column=start + 1,
            end_line=1,
            end_column=start + 2,
        )
    return Diagnostic(code=code, severity=severity, message=message, span=span)


class TestSeverity:
    def test_ranks_are_ordered(self):
        assert Severity.ERROR.rank > Severity.WARNING.rank > Severity.INFO.rank

    def test_str_is_the_value(self):
        assert str(Severity.WARNING) == "warning"

    def test_constructible_from_value(self):
        assert Severity("error") is Severity.ERROR


class TestDiagnostic:
    def test_to_dict_minimal(self):
        d = _diag()
        assert d.to_dict() == {
            "code": "RL001",
            "severity": "warning",
            "message": "m",
        }

    def test_to_dict_with_span_and_extras(self):
        d = Diagnostic(
            code="RL010",
            severity=Severity.WARNING,
            message="m",
            span=Span(0, 4, 1, 1, 1, 5),
            rule="R1",
            hint="fix it",
            notes=("edge",),
        )
        out = d.to_dict()
        assert out["span"] == {
            "start": 0,
            "end": 4,
            "line": 1,
            "column": 1,
            "endLine": 1,
            "endColumn": 5,
        }
        assert out["rule"] == "R1"
        assert out["hint"] == "fix it"
        assert out["notes"] == ["edge"]

    def test_sort_key_position_before_code(self):
        late = _diag(code="RL001", start=10)
        early = _diag(code="RL020", start=2)
        assert early.sort_key() < late.sort_key()

    def test_spanless_sorts_first(self):
        spanless = _diag(code="RL022")
        spanned = _diag(code="RL001", start=0)
        assert spanless.sort_key() < spanned.sort_key()


class TestLintReport:
    def test_of_sorts(self):
        report = LintReport.of(
            [_diag(code="RL020", start=9), _diag(code="RL001", start=1)]
        )
        assert [d.code for d in report] == ["RL001", "RL020"]

    def test_counts(self):
        report = LintReport.of(
            [
                _diag(severity=Severity.ERROR),
                _diag(severity=Severity.WARNING),
                _diag(severity=Severity.WARNING, message="other"),
                _diag(severity=Severity.INFO),
            ]
        )
        assert report.counts() == {"error": 1, "warning": 2, "info": 1}
        assert len(report.errors) == 1
        assert len(report.warnings) == 2
        assert len(report.infos) == 1

    def test_exit_code_errors(self):
        report = LintReport.of([_diag(severity=Severity.ERROR)])
        assert report.exit_code() == 1
        assert report.exit_code(strict=True) == 1

    def test_exit_code_warnings_gated_by_strict(self):
        report = LintReport.of([_diag(severity=Severity.WARNING)])
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_exit_code_infos_always_clean(self):
        report = LintReport.of([_diag(severity=Severity.INFO)])
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 0

    def test_len_and_iter(self):
        report = LintReport.of([_diag(), _diag(message="n")])
        assert len(report) == 2
        assert all(isinstance(d, Diagnostic) for d in report)


class TestCodeCatalogue:
    def test_all_codes_sorted_and_stable(self):
        codes = all_codes()
        assert codes == tuple(sorted(codes))
        assert "RL001" in codes and "RL010" in codes and "RL011" in codes
        assert set(SECONDARY_CODES) <= set(codes)

    def test_every_code_has_a_name(self):
        names = code_names()
        assert set(names) == set(all_codes())
        for name in names.values():
            assert name and name == name.lower()
