"""Rendering: text, JSON and SARIF output of a lint report."""

import json

from repro.lint.diagnostics import Severity
from repro.lint.engine import lint_source
from repro.lint.formats import (
    SARIF_VERSION,
    render,
    render_json,
    render_sarif,
    render_text,
)

PROGRAM = "R1: s(X, X) -> r(X).\nR2: base(X) -> s(X, X).\n"


def report(path="prog.dlp"):
    return lint_source(PROGRAM, path=path)


class TestTextFormat:
    def test_compiler_style_location(self):
        out = render_text(report())
        assert "prog.dlp:1:" in out
        assert "warning[RL007]:" in out

    def test_source_line_quoted_with_caret(self):
        out = render_text(report())
        assert "    | R1: s(X, X) -> r(X)." in out
        caret_lines = [
            line for line in out.splitlines() if set(line.strip()) <= {"|", "^", " "}
            and "^" in line
        ]
        assert caret_lines

    def test_hint_rendered(self):
        out = render_text(report())
        assert "hint:" in out

    def test_summary_line(self):
        out = render_text(report())
        counts = report().counts()
        assert f"{counts['warning']} warning" in out.splitlines()[-1]

    def test_clean_report_says_no_findings(self):
        clean = lint_source("R1: a(X) -> b(X).")
        # a(X) EDB info remains; silence it for a truly clean report
        from repro.lint.engine import LintConfig

        clean = lint_source(
            "R1: a(X) -> b(X).",
            config=LintConfig(disabled=frozenset({"RL006"})),
        )
        assert render_text(clean).strip().endswith("no findings")


class TestJsonFormat:
    def test_parses_and_carries_summary(self):
        doc = json.loads(render_json(report()))
        assert doc["version"] == 1
        assert doc["path"] == "prog.dlp"
        assert set(doc["summary"]) == {"error", "warning", "info"}

    def test_diagnostics_have_span_objects(self):
        doc = json.loads(render_json(report()))
        spanned = [d for d in doc["diagnostics"] if "span" in d]
        assert spanned
        span = spanned[0]["span"]
        assert {"start", "end", "line", "column"} <= set(span)

    def test_deterministic(self):
        assert render_json(report()) == render_json(report())


class TestSarifFormat:
    def test_skeleton(self):
        doc = json.loads(render_sarif(report()))
        assert doc["version"] == SARIF_VERSION
        assert "$schema" in doc
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"

    def test_rules_cover_results(self):
        doc = json.loads(render_sarif(report()))
        (run,) = doc["runs"]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(rule_ids)
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]

    def test_levels_mapped(self):
        doc = json.loads(render_sarif(report()))
        levels = {r["level"] for r in doc["runs"][0]["results"]}
        assert levels <= {"error", "warning", "note"}

    def test_region_present_for_spanned_findings(self):
        doc = json.loads(render_sarif(report()))
        located = [
            r for r in doc["runs"][0]["results"] if "locations" in r
        ]
        assert located
        region = located[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1

    def test_hints_become_fixes(self):
        doc = json.loads(render_sarif(report()))
        assert any("fixes" in r for r in doc["runs"][0]["results"])


class TestDispatch:
    def test_render_dispatches(self):
        rep = report()
        assert render(rep, "text") == render_text(rep)
        assert render(rep, "json") == render_json(rep)
        assert render(rep, "sarif") == render_sarif(rep)

    def test_unknown_format_rejected(self):
        try:
            render(report(), "xml")
        except ValueError as error:
            assert "xml" in str(error)
        else:
            raise AssertionError("expected ValueError")


class TestSeverityMapping:
    def test_error_level_in_sarif(self):
        rep = lint_source("R1: a(X) -> b(X).\nR2: b(X, Y) -> c(X).")
        assert rep.by_severity(Severity.ERROR)
        doc = json.loads(render_sarif(rep))
        assert any(
            r["level"] == "error" for r in doc["runs"][0]["results"]
        )
