"""Unit tests for the individual analysis passes."""

from repro.lang.parser import parse_program, parse_query
from repro.lint.diagnostics import Severity
from repro.lint.engine import LintConfig, lint_program, lint_source, preflight
from repro.lint.passes import (
    LintContext,
    estimate_rewriting_growth,
    rule_subsumes,
)
from repro.rewriting.budget import RewritingBudget


def codes(report):
    return [d.code for d in report]


class TestArityConsistency:
    def test_mismatch_is_error(self):
        report = lint_program(
            parse_program("R1: a(X) -> b(X).\nR2: b(X, Y) -> c(X).")
        )
        (d,) = [d for d in report if d.code == "RL001"]
        assert d.severity is Severity.ERROR
        assert "b" in d.message and "arity" in d.message
        assert d.span is not None

    def test_query_arity_checked(self):
        report = lint_source("R1: a(X) -> b(X).", query_text="q(X) :- b(X, Y)")
        assert "RL001" in codes(report)

    def test_consistent_program_clean(self):
        report = lint_program(parse_program("R1: a(X) -> b(X)."))
        assert "RL001" not in codes(report)


class TestExistentialHeadVariables:
    def test_plain_existential_is_info(self):
        report = lint_program(parse_program("R1: a(X) -> b(X, Y)."))
        (d,) = [d for d in report if d.code == "RL002"]
        assert d.severity is Severity.INFO

    def test_near_miss_is_warning(self):
        report = lint_program(
            parse_program("R1: person(Name) -> registered(Nane).")
        )
        (d,) = [d for d in report if d.code == "RL002"]
        assert d.severity is Severity.WARNING
        assert "typo" in d.message

    def test_digit_suffix_is_not_a_typo(self):
        # Y1 vs Y3 is conventional naming, not a near-miss.
        report = lint_program(parse_program("R1: a(Y1) -> b(Y1, Y3)."))
        (d,) = [d for d in report if d.code == "RL002"]
        assert d.severity is Severity.INFO


class TestSubsumption:
    def test_duplicate_detected(self):
        report = lint_program(
            parse_program("R1: a(X) -> b(X).\nR2: a(Y) -> b(Y).")
        )
        (d,) = [d for d in report if d.code == "RL003"]
        assert "R2" in d.message and "R1" in d.message

    def test_strictly_more_general_rule_subsumes(self):
        general, specific = parse_program(
            "R1: a(X) -> b(X).\nR2: a(X), c(X) -> b(X)."
        )
        assert rule_subsumes(general, specific)
        assert not rule_subsumes(specific, general)
        report = lint_program((general, specific))
        (d,) = [d for d in report if d.code == "RL004"]
        assert d.rule == "R2"

    def test_different_heads_not_subsumed(self):
        report = lint_program(
            parse_program("R1: a(X) -> b(X).\nR2: a(X) -> c(X).")
        )
        assert "RL003" not in codes(report)
        assert "RL004" not in codes(report)

    def test_repeated_head_variable_blocks_subsumption(self):
        # b(X, X) is strictly more specific than b(X, Y).
        general, specific = parse_program(
            "R1: a(X, Y) -> b(X, Y).\nR2: a(X, X) -> b(X, X)."
        )
        assert not rule_subsumes(specific, general)


class TestUnusedAndUnderivable:
    def test_unused_requires_query(self):
        rules = parse_program("R1: a(X) -> b(X).\nR2: a(X) -> c(X).")
        assert "RL005" not in codes(lint_program(rules))
        report = lint_program(rules, parse_query("q(X) :- b(X)"))
        (d,) = [d for d in report if d.code == "RL005"]
        assert "c" in d.message and d.rule == "R2"

    def test_edb_relation_is_info(self):
        report = lint_program(parse_program("R1: base(X) -> derived(X)."))
        (d,) = [d for d in report if d.code == "RL006"]
        assert d.severity is Severity.INFO
        assert "EDB" in d.message

    def test_near_miss_underivable_is_warning(self):
        report = lint_program(
            parse_program(
                "R1: a(X) -> reaches(X).\nR2: reachs(X) -> goal(X)."
            )
        )
        found = [d for d in report if d.code == "RL006"]
        warning = [d for d in found if d.severity is Severity.WARNING]
        assert warning and "reaches" in warning[0].message


class TestSimplicity:
    def test_repeated_variable_in_atom(self):
        report = lint_program(parse_program("R1: s(X, X) -> r(X)."))
        (d,) = [d for d in report if d.code == "RL007"]
        assert "repeated variable" in d.message
        assert d.span is not None

    def test_simple_rules_clean(self):
        report = lint_program(parse_program("R1: s(X, Y), t(Z) -> r(X, Z)."))
        assert "RL007" not in codes(report)


class TestRecursionDiagnostics:
    def test_rl010_names_rules_and_edge_labels(self):
        # Simple TGD whose position graph has a cycle with both an
        # m-edge (W is missing from the first body atom) and an s-edge
        # (Y joins the two body atoms).
        report = lint_program(parse_program("R1: a(X, Y), b(Y, Z) -> a(Z, W)."))
        (d,) = [d for d in report if d.code == "RL010"]
        assert d.severity is Severity.WARNING
        assert "R1" in d.message
        assert d.notes, "witness cycle must be rendered in the notes"
        rendered = "\n".join(d.notes)
        assert "m" in rendered and "s" in rendered
        assert "via R1" in rendered

    def test_rl013_on_multi_atom_head(self):
        report = lint_program(parse_program("R1: a(X) -> b(X), c(X)."))
        assert "RL013" in codes(report)
        assert "RL010" not in codes(report)

    def test_rl012_on_pnode_budget(self):
        rules = parse_program("R1: a(X, Y), b(Y, Z) -> a(Z, W).")
        config = LintConfig(wr_max_nodes=1)
        report = lint_program(rules, config=config)
        (d,) = [d for d in report if d.code == "RL012"]
        assert d.severity is Severity.INFO

    def test_non_recursive_program_has_no_recursion_findings(self):
        report = lint_program(parse_program("R1: a(X) -> b(X)."))
        assert not any(
            c in codes(report) for c in ("RL010", "RL011", "RL012", "RL013")
        )


class TestRewritingRisk:
    def test_rl020_high_branching(self):
        text = "\n".join(f"R{i}: a{i}(X) -> hub(X)." for i in range(1, 10))
        report = lint_program(parse_program(text))
        (d,) = [d for d in report if d.code == "RL020"]
        assert "hub" in d.message and "9" in d.message

    def test_rl020_threshold_configurable(self):
        text = "R1: a(X) -> hub(X).\nR2: b(X) -> hub(X)."
        rules = parse_program(text)
        assert "RL020" not in codes(lint_program(rules))
        report = lint_program(rules, config=LintConfig(branching_threshold=2))
        assert "RL020" in codes(report)

    def test_growth_estimate_acyclic(self):
        rules = parse_program("R1: a(X) -> b(X).\nR2: b(X) -> c(X).")
        ctx = LintContext(rules=rules)
        estimate, depth = estimate_rewriting_growth(
            ctx, parse_query("q(X) :- c(X)")
        )
        assert depth == 2
        assert estimate == 4  # (1 + 1 deriver) ** 2

    def test_rl021_silent_on_fo_rewritable_recursion(self):
        # Example 1 is SWR: even with a huge budget max_depth, the
        # cyclic-chain fallback must not predict a blowup.
        from repro.workloads.paper import EXAMPLE1_QUERY, example1

        budget = RewritingBudget(max_depth=50, max_cqs=100_000)
        report = lint_program(
            example1(), EXAMPLE1_QUERY, LintConfig(budget=budget)
        )
        assert "RL021" not in codes(report)

    def test_rl021_fires_against_tight_budget(self):
        rules = parse_program("R1: a(X) -> b(X).\nR2: b(X) -> c(X).")
        budget = RewritingBudget(max_cqs=2)
        report = lint_program(
            rules, parse_query("q(X) :- c(X)"), LintConfig(budget=budget)
        )
        (d,) = [d for d in report if d.code == "RL021"]
        assert "max_cqs=2" in d.message

    def test_rl022_on_uncovered_recursion(self):
        # Transitive closure plus value invention fed back into the
        # closure: outside SWR, WR and every baseline class.
        text = (
            "R1: e(X, Y), e(Y, Z) -> e(X, Z).\n"
            "R2: e(X, X) -> p(X, W).\n"
            "R3: p(X, Y), e(Y, X) -> e(X, Y).\n"
        )
        report = lint_program(parse_program(text))
        assert "RL022" in codes(report)


class TestEngineControls:
    def test_disabled_codes_suppressed(self):
        rules = parse_program("R1: s(X, X) -> r(X).")
        report = lint_program(rules, config=LintConfig(disabled=frozenset({"RL007"})))
        assert "RL007" not in codes(report)

    def test_stage_selection(self):
        rules = parse_program("R1: a(X, Y), b(Y, Z) -> a(Z, W).")
        report = lint_program(
            rules, config=LintConfig(stages=("wellformed",))
        )
        assert "RL010" not in codes(report)

    def test_lint_source_parse_error_becomes_rl000(self):
        report = lint_source("a(X -> b(X).")
        (d,) = report.diagnostics
        assert d.code == "RL000"
        assert d.severity is Severity.ERROR
        assert d.span is not None

    def test_lint_source_query_parse_error(self):
        report = lint_source("R1: a(X) -> b(X).", query_text="q(X :- b(X)")
        (d,) = report.diagnostics
        assert d.code == "RL000"
        assert d.message.startswith("query: ")
        assert d.span is None  # spans into query_text must not render
        # against the program source

    def test_query_diagnostics_carry_no_program_span(self):
        # The query parses from a separate string; its spans index
        # that string, so lint_source must strip them.
        report = lint_source(
            "R1: a(X) -> b(X).", query_text="q(X) :- b(X, Y)"
        )
        (d,) = [d for d in report if d.code == "RL001"]
        assert d.span is None


class TestPreflight:
    def test_only_errors_returned(self):
        rules = parse_program("R1: s(X, X) -> r(X).")  # RL007 warning only
        assert preflight(rules) == ()

    def test_arity_error_caught(self):
        rules = parse_program("R1: a(X) -> b(X).\nR2: b(X, Y) -> c(X).")
        findings = preflight(rules)
        assert findings and findings[0].code == "RL001"
