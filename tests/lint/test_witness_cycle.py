"""Edge provenance and minimal witness cycles in LabeledGraph."""

from repro.graphs.cycles import LabeledGraph
from repro.graphs.pnode_graph import build_pnode_graph
from repro.graphs.position_graph import build_position_graph
from repro.lang.parser import parse_program


class TestEdgeRuleProvenance:
    def test_rules_accumulate_per_edge(self):
        graph = LabeledGraph()
        graph.add_edge("a", "b", labels=("m",), rules=("R1",))
        graph.add_edge("a", "b", labels=("s",), rules=("R2",))
        assert graph.rules_of("a", "b") == frozenset({"R1", "R2"})

    def test_unknown_edge_has_no_rules(self):
        graph = LabeledGraph()
        graph.add_edge("a", "b")
        assert graph.rules_of("b", "a") == frozenset()

    def test_position_graph_records_rule_labels(self):
        rules = parse_program("R1: a(X) -> b(X).")
        graph = build_position_graph(rules).graph
        provenances = {
            graph.rules_of(e.source, e.target) for e in graph.edges
        }
        assert frozenset({"R1"}) in provenances

    def test_pnode_graph_records_rule_labels(self):
        rules = parse_program("R1: a(X) -> b(X).")
        graph = build_pnode_graph(rules).graph
        assert any(
            "R1" in graph.rules_of(e.source, e.target)
            for e in graph.edges
        )


class TestMinimalLabeledCycle:
    def _graph(self):
        graph = LabeledGraph()
        # A long cycle carrying m and s ...
        graph.add_edge("a", "b", labels=("m",), rules=("R1",))
        graph.add_edge("b", "c", labels=(), rules=("R2",))
        graph.add_edge("c", "d", labels=("s",), rules=("R3",))
        graph.add_edge("d", "a", labels=(), rules=("R4",))
        # ... and a short one.
        graph.add_edge("x", "y", labels=("m", "s"), rules=("R5",))
        graph.add_edge("y", "x", labels=(), rules=("R5",))
        return graph

    def test_shortest_witness_wins(self):
        cycle = self._graph().find_minimal_labeled_cycle(("m", "s"))
        assert cycle is not None
        assert len(cycle) == 2
        assert {e.source for e in cycle} == {"x", "y"}

    def test_labels_actually_covered(self):
        cycle = self._graph().find_minimal_labeled_cycle(("m", "s"))
        carried = set().union(*(e.labels for e in cycle))
        assert {"m", "s"} <= carried

    def test_forbidden_label_excludes_cycle(self):
        graph = LabeledGraph()
        graph.add_edge("x", "y", labels=("m", "s", "i"))
        graph.add_edge("y", "x", labels=())
        assert (
            graph.find_minimal_labeled_cycle(("m", "s"), forbidden=("i",))
            is None
        )

    def test_no_cycle_returns_none(self):
        graph = LabeledGraph()
        graph.add_edge("a", "b", labels=("m", "s"))
        assert graph.find_minimal_labeled_cycle(("m", "s")) is None

    def test_self_loop_is_minimal(self):
        graph = LabeledGraph()
        graph.add_edge("a", "a", labels=("m", "s"), rules=("R1",))
        cycle = graph.find_minimal_labeled_cycle(("m", "s"))
        assert cycle is not None and len(cycle) == 1

    def test_labels_split_across_edges(self):
        graph = LabeledGraph()
        graph.add_edge("a", "b", labels=("m",))
        graph.add_edge("b", "a", labels=("s",))
        cycle = graph.find_minimal_labeled_cycle(("m", "s"))
        assert cycle is not None and len(cycle) == 2

    def test_not_shorter_than_default_witness(self):
        # On the real Example-2 P-node graph the minimal witness must
        # be at most as long as the one the WR check reports.
        from repro.core.wr import is_wr
        from repro.workloads.paper import example2

        result = is_wr(example2())
        assert result.dangerous_cycle is not None
        graph = result.graph.graph
        minimal = graph.find_minimal_labeled_cycle(
            ("d", "m", "s"), forbidden=("i",)
        )
        assert minimal is not None
        assert len(minimal) <= len(result.dangerous_cycle)
