"""Span tracking: line/column provenance through the parser."""

import pytest

from repro.lang.atoms import Atom
from repro.lang.errors import ParseError
from repro.lang.parser import parse_atom, parse_program, parse_query
from repro.lang.spans import Span, offset_to_line_col
from repro.lang.terms import Variable

TEXT = "ab\ncd\ne"


class TestOffsetToLineCol:
    def test_start_of_text(self):
        assert offset_to_line_col(TEXT, 0) == (1, 1)

    def test_same_line(self):
        assert offset_to_line_col(TEXT, 1) == (1, 2)

    def test_after_newline(self):
        assert offset_to_line_col(TEXT, 3) == (2, 1)

    def test_third_line(self):
        assert offset_to_line_col(TEXT, 6) == (3, 1)

    def test_clamped_past_end(self):
        assert offset_to_line_col(TEXT, 999) == (3, 2)


class TestSpan:
    def test_from_offsets(self):
        span = Span.from_offsets(TEXT, 3, 5)
        assert (span.line, span.column) == (2, 1)
        assert (span.end_line, span.end_column) == (2, 3)
        assert span.snippet(TEXT) == "cd"

    def test_str_single_line(self):
        span = Span.from_offsets(TEXT, 3, 5)
        assert str(span) == "2:1-3"

    def test_str_multi_line(self):
        span = Span.from_offsets(TEXT, 0, 5)
        assert str(span) == "1:1-2:3"

    def test_merge_covers_both(self):
        left = Span.from_offsets(TEXT, 0, 2)
        right = Span.from_offsets(TEXT, 3, 5)
        merged = left.merge(right)
        assert (merged.start, merged.end) == (0, 5)
        assert merged == right.merge(left)

    def test_invalid_offsets_rejected(self):
        with pytest.raises(ValueError):
            Span(start=5, end=2, line=1, column=1, end_line=1, end_column=1)

    def test_zero_based_line_rejected(self):
        with pytest.raises(ValueError):
            Span(start=0, end=1, line=0, column=1, end_line=1, end_column=2)


class TestParserSpans:
    def test_atom_has_span(self):
        atom = parse_atom("edge(X, Y)")
        assert atom.span is not None
        assert (atom.span.line, atom.span.column) == (1, 1)

    def test_rule_span_covers_rule(self):
        text = "R1: a(X) -> b(X)."
        (rule,) = parse_program(text)
        assert rule.span is not None
        assert rule.span.snippet(text).startswith("R1: a(X) -> b(X)")

    def test_second_rule_on_second_line(self):
        text = "R1: a(X) -> b(X).\nR2: b(X) -> c(X)."
        rules = parse_program(text)
        assert rules[1].span is not None
        assert rules[1].span.line == 2

    def test_body_atom_spans_distinct(self):
        (rule,) = parse_program("R1: a(X), b(X) -> c(X).")
        spans = [atom.span for atom in rule.body]
        assert all(span is not None for span in spans)
        assert spans[0].start < spans[1].start

    def test_query_has_span(self):
        query = parse_query("q(X) :- edge(X, Y)")
        assert query.span is not None
        assert query.span.line == 1

    def test_relabeling_preserves_span(self):
        # parse_program assigns R<i> labels to unlabeled rules; the
        # span must survive that rebuild.
        (rule,) = parse_program("a(X) -> b(X).")
        assert rule.label == "R1"
        assert rule.span is not None


class TestSpansAreProvenanceOnly:
    def test_atom_equality_ignores_span(self):
        with_span = parse_atom("a(X)")
        without = Atom("a", (Variable("X"),))
        assert with_span == without
        assert hash(with_span) == hash(without)

    def test_rule_equality_ignores_span(self):
        (parsed,) = parse_program("R1: a(X) -> b(X).")
        (rebuilt,) = parse_program("R1: a(X) ->\n  b(X).")
        assert parsed == rebuilt

    def test_apply_keeps_rule_span(self):
        from repro.lang.substitution import Substitution

        (rule,) = parse_program("R1: a(X) -> b(X).")
        renamed = rule.apply(Substitution({Variable("X"): Variable("Z")}))
        assert renamed.span == rule.span


class TestParseErrorSpans:
    def test_error_carries_span(self):
        with pytest.raises(ParseError) as exc:
            parse_program("a(X) -> \nb(X")
        assert exc.value.span is not None
        assert exc.value.span.line == 2

    def test_message_names_line_and_column(self):
        with pytest.raises(ParseError) as exc:
            parse_program("a(X -> b(X).")
        assert "line 1" in str(exc.value)
        assert "offset" in str(exc.value)
