"""Golden lint expectations for the paper's Examples 1, 2 and 3.

These pin the linter's verdicts on the workloads of Figures 1-3: which
codes fire, which rules they blame, and the witness-cycle edges.  The
deterministic ordering of :class:`LintReport` makes the code sequences
stable across runs.
"""

from repro.lint.diagnostics import Severity
from repro.lint.engine import lint_program
from repro.workloads.paper import (
    EXAMPLE1_QUERY,
    example1,
    example2,
    example3,
)


def codes(report):
    return [d.code for d in report]


class TestExample1:
    """Figure 1: SWR, hence FO-rewritable -- only informational findings."""

    def test_no_errors_or_warnings(self):
        report = lint_program(example1(), EXAMPLE1_QUERY)
        assert report.errors == ()
        assert report.warnings == ()

    def test_exact_codes(self):
        report = lint_program(example1())
        assert sorted(codes(report)) == ["RL002", "RL006", "RL006"]

    def test_edb_relations_identified(self):
        report = lint_program(example1())
        edb = {
            d.message.split()[1]
            for d in report
            if d.code == "RL006"
        }
        assert edb == {"t", "q0"}

    def test_strict_gate_passes(self):
        assert lint_program(example1()).exit_code(strict=True) == 0


class TestExample2:
    """Figures 2-3: not WR; the P-node graph exposes the recursion."""

    def test_rl011_fires(self):
        report = lint_program(example2())
        (d,) = [d for d in report if d.code == "RL011"]
        assert d.severity is Severity.WARNING
        assert "not WR" in d.message

    def test_witness_cycle_names_both_rules(self):
        (d,) = [d for d in lint_program(example2()) if d.code == "RL011"]
        assert "R1" in d.message and "R2" in d.message

    def test_witness_cycle_edges_carry_d_m_s(self):
        (d,) = [d for d in lint_program(example2()) if d.code == "RL011"]
        rendered = "\n".join(d.notes)
        assert "[d]" in rendered or "d," in rendered
        assert "d,m,s" in rendered
        assert "via R1" in rendered and "via R2" in rendered

    def test_witness_cycle_is_minimal(self):
        (d,) = [d for d in lint_program(example2()) if d.code == "RL011"]
        assert len(d.notes) == 2  # the dangerous cycle has two edges

    def test_position_graph_misses_it(self):
        # The point of Example 2: AG(P) sees no dangerous cycle.
        assert "RL010" not in codes(lint_program(example2()))

    def test_r2_is_not_simple(self):
        report = lint_program(example2())
        (d,) = [d for d in report if d.code == "RL007"]
        assert d.rule == "R2"
        assert "s(Y1, Y1, Y2)" in d.message

    def test_strict_gate_fails(self):
        assert lint_program(example2()).exit_code(strict=True) == 1

    def test_anchored_to_source_rule(self):
        (d,) = [d for d in lint_program(example2()) if d.code == "RL011"]
        assert d.span is not None
        assert d.rule in {"R1", "R2"}


class TestExample3:
    """FO-rewritable but outside SWR: simplicity is the only complaint."""

    def test_not_simple_three_times(self):
        report = lint_program(example3())
        violations = [d for d in report if d.code == "RL007"]
        assert len(violations) == 3
        assert {d.rule for d in violations} == {"R1", "R3"}

    def test_no_witness_cycles(self):
        report = lint_program(example3())
        assert "RL010" not in codes(report)
        assert "RL011" not in codes(report)

    def test_no_fo_guarantee_does_not_fire(self):
        # Example 3 is WR, so RL022 must stay silent.
        assert "RL022" not in codes(lint_program(example3()))
