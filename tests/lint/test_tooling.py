"""Gated ruff/mypy checks over the lint subsystem.

The container may not ship either tool; the checks skip cleanly when
the module is absent and enforce the pyproject configuration when it
is installed.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


def _has(module: str) -> bool:
    return importlib.util.find_spec(module) is not None


@pytest.mark.skipif(not _has("ruff"), reason="ruff not installed")
def test_ruff_clean_on_lint_subsystem():
    result = subprocess.run(
        [
            sys.executable, "-m", "ruff", "check",
            "src/repro/lint", "src/repro/checkers", "src/repro/lang/spans.py",
        ],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.skipif(not _has("mypy"), reason="mypy not installed")
def test_mypy_strict_on_lint_subsystem():
    result = subprocess.run(
        [sys.executable, "-m", "mypy"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_pyproject_configures_both_tools():
    text = (REPO / "pyproject.toml").read_text()
    assert "[tool.ruff" in text
    assert "[tool.mypy]" in text
    assert "strict = true" in text
