"""The ``repro lint`` command and the lint preflight wiring."""

import json

import pytest

from repro.cli import main

CLEAN = "R1: a(X) -> b(X).\nR2: b(X) -> c(X).\n"
NOT_SIMPLE = "R1: s(X, X) -> r(X).\n"
NOT_WR = """
R1: t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).
R2: s(Y1, Y1, Y2) -> r(Y2, Y3).
"""
ARITY_CLASH = "R1: a(X) -> b(X).\nR2: b(X, Y) -> c(X).\n"


@pytest.fixture
def write(tmp_path):
    def _write(text, name="prog.dlp"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return _write


class TestLintCommand:
    def test_clean_program_exit_zero(self, write, capsys):
        assert main(["lint", write(CLEAN)]) == 0
        assert "info" in capsys.readouterr().out  # EDB note for a

    def test_warning_exit_zero_without_strict(self, write):
        assert main(["lint", write(NOT_SIMPLE)]) == 0

    def test_strict_promotes_warnings(self, write):
        assert main(["lint", write(NOT_SIMPLE), "--strict"]) == 1

    def test_error_always_nonzero(self, write):
        assert main(["lint", write(ARITY_CLASH)]) == 1

    def test_text_format_has_spans(self, write, capsys):
        path = write(NOT_SIMPLE)
        main(["lint", path])
        out = capsys.readouterr().out
        assert f"{path}:1:" in out
        assert "warning[RL007]" in out

    def test_json_format(self, write, capsys):
        main(["lint", write(NOT_SIMPLE), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert any(d["code"] == "RL007" for d in doc["diagnostics"])

    def test_sarif_format(self, write, capsys):
        main(["lint", write(NOT_SIMPLE), "--format", "sarif"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-lint"

    def test_witness_cycle_in_output(self, write, capsys):
        main(["lint", write(NOT_WR)])
        out = capsys.readouterr().out
        assert "RL011" in out
        assert "d,m,s" in out
        assert "via R1" in out

    def test_query_flag(self, write, capsys):
        main(["lint", write(CLEAN), "--query", "q(X) :- c(X)"])
        assert main(
            ["lint", write(CLEAN), "--query", "q(X) :- c(X, Y)"]
        ) == 1  # arity clash with the program

    def test_no_recursion_skips_graphs(self, write, capsys):
        main(["lint", write(NOT_WR), "--no-recursion"])
        assert "RL011" not in capsys.readouterr().out

    def test_disable_code(self, write, capsys):
        main(["lint", write(NOT_SIMPLE), "--disable", "RL007"])
        assert "RL007" not in capsys.readouterr().out

    def test_parse_error_is_rl000(self, write, capsys):
        code = main(["lint", write("a(X -> b(X).")])
        assert code == 1
        assert "RL000" in capsys.readouterr().out

    def test_stdin(self, write, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(NOT_SIMPLE))
        assert main(["lint", "-", "--strict"]) == 1
        assert "<stdin>:1:" in capsys.readouterr().out


class TestReadErrors:
    def test_missing_file_exit_two(self, capsys):
        code = main(["lint", "/nonexistent/prog.dlp"])
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot read" in err and "/nonexistent/prog.dlp" in err

    def test_missing_file_classify(self, capsys):
        assert main(["classify", "/nonexistent/prog.dlp"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_unreadable_directory(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path)]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestPreflightWiring:
    def test_classify_rejects_arity_clash(self, write, capsys):
        assert main(["classify", write(ARITY_CLASH)]) == 2
        err = capsys.readouterr().err
        assert "RL001" in err

    def test_rewrite_rejects_arity_clash(self, write, capsys):
        code = main(["rewrite", write(ARITY_CLASH), "q(X) :- c(X)"])
        assert code == 2
        assert "RL001" in capsys.readouterr().err

    def test_classify_accepts_clean_program(self, write, capsys):
        assert main(["classify", write(CLEAN)]) == 0
        assert "RL001" not in capsys.readouterr().err

    def test_rewrite_accepts_warnings(self, write, capsys):
        # Warnings (not-simple) must not block rewriting.
        assert main(["rewrite", write(NOT_SIMPLE), "q(X) :- r(X)"]) == 0
