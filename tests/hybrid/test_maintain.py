"""Unit tests for the incrementally maintained chase core."""

from __future__ import annotations

import pytest

from repro import obs
from repro.hybrid import MaterializedCore
from repro.hybrid.maintain import MIN_DELTA_FLOOR, _certain_shape
from repro.lang.atoms import Atom
from repro.lang.errors import ChaseBudgetExceeded
from repro.lang.parser import parse_program
from repro.lang.terms import Constant, Null
from repro.obs import InMemorySink

HIERARCHY = parse_program(
    """
    H1: lvl0(X) -> lvl1(X).
    H2: lvl1(X) -> lvl2(X).
    """
)

EXISTENTIAL = parse_program("E: person(X) -> hasId(X, Y).")

# Two independent derivations of the same head relation.
DIAMOND = parse_program(
    """
    D1: a(X) -> c(X).
    D2: b(X) -> c(X).
    """
)

# A body/head cycle on null-free atoms: the classic trap where naive
# support counting lets facts keep each other alive after the base
# fact is gone.
CYCLE = parse_program(
    """
    C1: a(X) -> b(X).
    C2: b(X) -> a(X).
    """
)


def fact(relation: str, *names: str) -> Atom:
    return Atom(relation, tuple(Constant(name) for name in names))


def test_build_saturates_to_the_chase_closure():
    core = MaterializedCore(HIERARCHY, [fact("lvl0", "e")])
    assert fact("lvl2", "e") in core.instance
    assert core.derived_count == 2
    assert core.check_consistency() == []


def test_insert_propagates_semi_naively():
    core = MaterializedCore(HIERARCHY, [fact("lvl0", "a")])
    result = core.apply_insert([fact("lvl0", "b")])
    assert not result.full_rechase
    assert fact("lvl2", "b") in core.instance
    assert set(result.added) >= {
        fact("lvl0", "b"), fact("lvl1", "b"), fact("lvl2", "b")
    }
    assert core.check_consistency() == []


def test_insert_of_entailed_fact_is_a_noop_delta():
    core = MaterializedCore(HIERARCHY, [fact("lvl0", "a")])
    before = len(core)
    result = core.apply_insert([fact("lvl0", "a")])
    assert result.added == ()
    assert len(core) == before
    # The fact is now *base* as well as derived, though: deleting the
    # lvl1 projection later cannot remove it.
    result = core.apply_insert([fact("lvl1", "a")])
    assert result.added == ()
    assert core.check_consistency() == []


def test_delete_retracts_downstream_derivations():
    core = MaterializedCore(
        HIERARCHY, [fact("lvl0", "a"), fact("lvl0", "b")]
    )
    result = core.apply_delete([fact("lvl0", "a")])
    assert not result.full_rechase
    assert fact("lvl2", "a") not in core.instance
    assert fact("lvl2", "b") in core.instance
    assert set(result.removed) == {
        fact("lvl0", "a"), fact("lvl1", "a"), fact("lvl2", "a")
    }
    assert core.check_consistency() == []


def test_delete_rederives_alternatively_supported_facts():
    core = MaterializedCore(DIAMOND, [fact("a", "x"), fact("b", "x")])
    result = core.apply_delete([fact("a", "x")])
    # c(x) is over-deleted with its a-derivation but immediately
    # re-derived from b(x): the net removal is a(x) alone.
    assert fact("c", "x") in core.instance
    assert set(result.removed) == {fact("a", "x")}
    assert core.check_consistency() == []


def test_delete_breaks_mutual_support_cycles():
    core = MaterializedCore(CYCLE, [fact("a", "x")])
    assert fact("b", "x") in core.instance
    core.apply_delete([fact("a", "x")])
    # Neither a(x) nor b(x) may survive on circular support.
    assert len(core.instance) == 0
    assert core.check_consistency() == []


def test_existential_consequences_are_invented_and_retracted():
    core = MaterializedCore(EXISTENTIAL, [fact("person", "ada")])
    ids = [f for f in core.instance.facts() if f.relation == "hasId"]
    assert len(ids) == 1
    assert isinstance(ids[0].terms[1], Null)
    core.apply_delete([fact("person", "ada")])
    assert len(core.instance) == 0
    assert core.check_consistency() == []


def test_large_insert_falls_back_to_full_rechase():
    sink = InMemorySink()
    core = MaterializedCore(
        HIERARCHY, [fact("lvl0", "seed")], threshold=0.5
    )
    batch = [fact("lvl0", f"n{i}") for i in range(MIN_DELTA_FLOOR + 2)]
    with obs.use(sink, inherit=False):
        result = core.apply_insert(batch)
    assert result.full_rechase
    assert sink.counters().get("hybrid.full_rechase") == 1
    assert "hybrid.delta_applied" not in sink.counters()
    # The rebuild still lands the complete closure.
    assert all(fact("lvl2", f"n{i}") in core.instance for i in range(5))
    assert core.check_consistency() == []


def test_small_deltas_never_trigger_rechase():
    sink = InMemorySink()
    core = MaterializedCore(HIERARCHY, [fact("lvl0", "seed")])
    with obs.use(sink, inherit=False):
        for i in range(5):
            core.apply_insert([fact("lvl0", f"n{i}")])
        for i in range(5):
            core.apply_delete([fact("lvl0", f"n{i}")])
    counters = sink.counters()
    assert counters.get("hybrid.full_rechase") is None
    assert counters["hybrid.delta_applied"] == 10
    assert _certain_shape(core.instance) == _certain_shape(
        core.rechase_reference()
    )


def test_chase_budget_is_enforced():
    with pytest.raises(ChaseBudgetExceeded):
        MaterializedCore(
            HIERARCHY,
            [fact("lvl0", f"n{i}") for i in range(10)],
            max_steps=3,
        )


def test_threshold_validation():
    with pytest.raises(ValueError):
        MaterializedCore(HIERARCHY, [], threshold=0.0)
    with pytest.raises(ValueError):
        MaterializedCore(HIERARCHY, [], threshold=1.5)


def test_mixed_mutation_sequence_stays_consistent():
    core = MaterializedCore(
        parse_program(
            """
            E: emp(X) -> person(X).
            P: person(X) -> hasId(X, Y).
            M: hasId(X, Y), emp(X) -> verified(X).
            """
        ),
        [fact("emp", "a"), fact("emp", "b")],
    )
    core.apply_insert([fact("emp", "c")])
    core.apply_delete([fact("emp", "a")])
    core.apply_insert([fact("person", "d")])
    core.apply_delete([fact("emp", "b"), fact("person", "d")])
    assert core.check_consistency() == []
    shape = _certain_shape(core.instance)
    assert fact("verified", "c") in shape
    assert fact("person", "a") not in shape
