"""Snapshot codec and cache-loading tests for repro.hybrid.store."""

from __future__ import annotations

import json

from repro import obs
from repro.api.cache import RewritingCache
from repro.data.database import Database
from repro.hybrid import (
    MaterializedCore,
    abox_digest,
    core_key,
    decode_core,
    encode_core,
    load_or_build,
)
from repro.lang.atoms import Atom
from repro.lang.parser import parse_program
from repro.lang.terms import Constant
from repro.obs import InMemorySink

RULES = parse_program(
    """
    E: emp(X) -> person(X).
    P: person(X) -> hasId(X, Y).
    """
)


def fact(relation: str, *names: str) -> Atom:
    return Atom(relation, tuple(Constant(name) for name in names))


def base() -> Database:
    return Database([fact("emp", "a"), fact("emp", "b")])


def test_roundtrip_preserves_state():
    core = MaterializedCore(RULES, base())
    restored = decode_core(
        encode_core(core), RULES, max_steps=core.max_steps, threshold=0.5
    )
    assert restored is not None
    assert set(restored.instance.facts()) == set(core.instance.facts())
    assert set(restored.base.facts()) == set(core.base.facts())
    assert restored.firing_count() == core.firing_count()
    assert restored.check_consistency() == []


def test_restored_core_maintains_correctly():
    core = MaterializedCore(RULES, base())
    restored = decode_core(
        encode_core(core), RULES, max_steps=core.max_steps, threshold=0.5
    )
    assert restored is not None
    restored.apply_insert([fact("emp", "c")])
    restored.apply_delete([fact("emp", "a")])
    assert fact("person", "c") in restored.instance
    assert fact("person", "a") not in restored.instance
    assert restored.check_consistency() == []


def test_restored_null_factory_resumes_past_issued_labels():
    core = MaterializedCore(RULES, base())
    restored = decode_core(
        encode_core(core), RULES, max_steps=core.max_steps, threshold=0.5
    )
    assert restored is not None
    before = set(restored.instance.facts())
    restored.apply_insert([fact("emp", "fresh")])
    invented = set(restored.instance.facts()) - before
    # The fresh null must not collide with any label already present.
    assert invented.isdisjoint(before)
    assert restored.check_consistency() == []


def test_decode_rejects_malformed_payloads():
    core = MaterializedCore(RULES, base())
    good = encode_core(core)
    kwargs = {"max_steps": core.max_steps, "threshold": 0.5}
    assert decode_core("not json", RULES, **kwargs) is None
    assert decode_core("{}", RULES, **kwargs) is None
    stale = json.loads(good)
    stale["version"] = 999
    assert decode_core(json.dumps(stale), RULES, **kwargs) is None
    truncated = json.loads(good)
    del truncated["firings"]
    assert decode_core(json.dumps(truncated), RULES, **kwargs) is None
    out_of_range = json.loads(good)
    if out_of_range["firings"]:
        out_of_range["firings"][0][0] = 99
        assert decode_core(json.dumps(out_of_range), RULES, **kwargs) is None


def test_abox_digest_is_order_independent_and_content_sensitive():
    one = Database([fact("emp", "a"), fact("emp", "b")])
    two = Database([fact("emp", "b"), fact("emp", "a")])
    assert abox_digest(one) == abox_digest(two)
    three = Database([fact("emp", "a"), fact("emp", "c")])
    assert abox_digest(one) != abox_digest(three)


def test_core_key_varies_with_every_component():
    digest = abox_digest(base())
    key = core_key(RULES, digest, 1000)
    assert key != core_key(RULES, digest, 2000)
    assert key != core_key(RULES[:1], digest, 1000)
    assert key != core_key(RULES, abox_digest(Database()), 1000)


def test_load_or_build_round_trips_through_the_cache(tmp_path):
    sink = InMemorySink()
    kwargs = {"max_steps": 1000, "threshold": 0.5}
    with RewritingCache(tmp_path) as cache:
        with obs.use(sink, inherit=False):
            first = load_or_build(cache, "digest-full", RULES, base(), **kwargs)
            second = load_or_build(cache, "digest-full", RULES, base(), **kwargs)
    counters = sink.counters()
    assert counters["hybrid.core_cache.misses"] == 1
    assert counters["hybrid.core_cache.hits"] == 1
    assert set(second.instance.facts()) == set(first.instance.facts())
    assert second.check_consistency() == []


def test_load_or_build_without_cache_always_builds():
    sink = InMemorySink()
    with obs.use(sink, inherit=False):
        core = load_or_build(
            None, "digest-full", RULES, base(), max_steps=1000, threshold=0.5
        )
    assert sink.counters()["hybrid.core_cache.misses"] == 1
    assert core.check_consistency() == []
