"""Unit matrix for the hybrid cost model (repro.hybrid.cost)."""

from __future__ import annotations

import pytest

from repro.analysis.separability import separate
from repro.hybrid.cost import (
    DEFAULT_UNIT_COSTS,
    HybridChoice,
    HybridDecision,
    decide,
)
from repro.lang.parser import parse_program, parse_query

# Terminating (weakly acyclic), with a modest static disjunct bound.
HIERARCHY = parse_program(
    """
    H1: lvl0(X) -> lvl1(X).
    H2: lvl1(X) -> lvl2(X).
    """
)
HIERARCHY_QUERY = parse_query("q(X) :- lvl2(X)")

# Non-terminating but separable: the emp->person rule is a chase-safe
# core, the person/knows existential cycle stays residual.
SEPARABLE = parse_program(
    """
    E: emp(X) -> person(X).
    K: person(X) -> knows(X, Y).
    B: knows(X, Y) -> person(Y).
    """
)

# Non-terminating and inseparable: no chase-safe stratified core.
INSEPARABLE = parse_program(
    """
    K: person(X) -> knows(X, Y).
    B: knows(X, Y) -> person(Y).
    """
)


def test_auto_prefers_rewriting_for_query_sparse_workloads():
    partition = separate(HIERARCHY, [HIERARCHY_QUERY])
    decision = decide(
        partition=partition, data_size=1000, workload_weight=1
    )
    assert decision.choice is HybridChoice.REWRITE
    assert not decision.forced
    assert "rewrite" in decision.feasible
    assert decision.estimates["rewrite"] < decision.estimates["materialize"]


def test_auto_amortizes_materialization_over_hot_workloads():
    partition = separate(HIERARCHY, [HIERARCHY_QUERY])
    decision = decide(
        partition=partition, data_size=4, workload_weight=10_000
    )
    assert decision.choice is HybridChoice.MATERIALIZE
    assert decision.workload_weight == 10_000


def test_auto_never_offers_materialize_without_certificate():
    partition = separate(INSEPARABLE)
    decision = decide(
        partition=partition, data_size=10, workload_weight=10_000
    )
    assert decision.choice is HybridChoice.REWRITE
    assert "materialize" not in decision.feasible
    assert "split" not in decision.feasible


def test_auto_offers_split_only_on_proper_partitions():
    separable = separate(SEPARABLE)
    assert separable.proper
    decision = decide(
        partition=separable, data_size=10, workload_weight=10_000
    )
    assert "split" in decision.feasible
    inseparable = separate(INSEPARABLE)
    assert not inseparable.proper
    decision = decide(
        partition=inseparable, data_size=10, workload_weight=10_000
    )
    assert "split" not in decision.feasible


def test_split_core_share_uses_live_relation_sizes():
    # With a workload, the residual disjunct bound is finite and the
    # core-share term is what distinguishes the estimates.
    partition = separate(SEPARABLE, [parse_query("q(X) :- person(X)")])
    assert partition.residual_bound is not None
    # The core's body only reads `emp`; with live cardinalities the
    # split estimate should ignore the huge person relation, and come
    # out exactly 9_995 chase-fact units cheaper than the blind
    # whole-database pricing.
    blind = decide(
        partition=partition, data_size=10_000, workload_weight=100
    )
    informed = decide(
        partition=partition,
        data_size=10_000,
        relation_sizes={"emp": 5, "person": 9_995},
        workload_weight=100,
    )
    saved = blind.estimates["split"] - informed.estimates["split"]
    assert saved == 9_995 * DEFAULT_UNIT_COSTS["chase_fact"]


def test_pinned_mode_is_forced():
    partition = separate(HIERARCHY, [HIERARCHY_QUERY])
    decision = decide(partition=partition, mode="materialize")
    assert decision.choice is HybridChoice.MATERIALIZE
    assert decision.forced


def test_pinned_materialize_falls_back_without_certificate():
    partition = separate(INSEPARABLE)
    decision = decide(partition=partition, mode="materialize")
    assert decision.choice is HybridChoice.REWRITE
    assert decision.forced
    assert "falling back" in decision.reason


def test_pinned_split_falls_back_on_improper_partitions():
    terminating = separate(HIERARCHY, [HIERARCHY_QUERY])
    assert not terminating.proper  # residual is empty: whole set chases
    decision = decide(partition=terminating, mode="split")
    assert decision.choice is HybridChoice.MATERIALIZE
    assert decision.forced
    inseparable = separate(INSEPARABLE)
    decision = decide(partition=inseparable, mode="split")
    assert decision.choice is HybridChoice.REWRITE


def test_observed_unit_costs_recalibrate():
    partition = separate(HIERARCHY, [HIERARCHY_QUERY])
    base = decide(partition=partition, data_size=100, workload_weight=50)
    recalibrated = decide(
        partition=partition,
        data_size=100,
        workload_weight=50,
        observed={"chase_fact": 400.0, "ignored_unit": 1.0, "delta_fact": -1},
    )
    assert (
        recalibrated.estimates["materialize"]
        > base.estimates["materialize"]
    )
    # Unknown and non-positive observations are ignored.
    assert recalibrated.estimates["rewrite"] == base.estimates["rewrite"]


def test_unknown_mode_raises():
    partition = separate(HIERARCHY)
    with pytest.raises(ValueError):
        decide(partition=partition, mode="chaotic")


def test_decision_to_dict_round_trips_the_choice():
    partition = separate(HIERARCHY, [HIERARCHY_QUERY])
    decision = decide(partition=partition, data_size=10)
    payload = decision.to_dict()
    assert payload["choice"] == decision.choice.value
    assert payload["feasible"] == list(decision.feasible)
    assert isinstance(payload["estimates"], dict)


def test_pinned_constructor_marks_forced():
    decision = HybridDecision.pinned(HybridChoice.SPLIT, "because")
    assert decision.forced
    assert decision.feasible == ("split",)
