"""Regression tests: materialized-core rows obey the cache discipline.

The eviction bugfix this PR pins: replacing an ontology must retire its
core snapshots exactly like its rewritings — ``evict_ontologies`` (and
the schema-version drop script) cover the ``materialized_cores`` table.
"""

from __future__ import annotations

import sqlite3

from repro.api.cache import RewritingCache


def test_core_rows_survive_reopen(tmp_path):
    with RewritingCache(tmp_path) as cache:
        cache.put_core("k1", "ont-a", '{"payload": 1}')
    with RewritingCache(tmp_path) as cache:
        assert cache.get_core("k1") == '{"payload": 1}'
        assert cache.get_core("missing") is None


def test_counts_and_len_cover_cores(tmp_path):
    with RewritingCache(tmp_path) as cache:
        assert cache.counts() == {"ucq": 0, "datalog": 0, "cores": 0}
        cache.put_core("k1", "ont-a", "{}")
        cache.put_core("k2", "ont-b", "{}")
        assert cache.counts()["cores"] == 2
        assert len(cache) == 2
        assert dict(cache.ontologies()) == {"ont-a": 1, "ont-b": 1}


def test_evicting_an_ontology_retires_its_cores(tmp_path):
    with RewritingCache(tmp_path) as cache:
        cache.put_core("k1", "ont-a", "{}")
        cache.put_core("k2", "ont-b", "{}")
        removed = cache.evict_ontologies({"ont-a"})
        assert removed == 1
        # The replaced ontology's snapshot is gone; the kept one stays.
        assert cache.get_core("k2") is None
        assert cache.get_core("k1") == "{}"
        assert cache.counts()["cores"] == 1


def test_put_core_overwrites_in_place(tmp_path):
    with RewritingCache(tmp_path) as cache:
        cache.put_core("k1", "ont-a", "old")
        cache.put_core("k1", "ont-a", "new")
        assert cache.get_core("k1") == "new"
        assert cache.counts()["cores"] == 1


def test_schema_bump_drops_stale_core_tables(tmp_path):
    # Simulate a cache written by an older schema: rewind the recorded
    # schema_version; reopening must rebuild the schema and drop the
    # stale snapshot rather than misread it.
    with RewritingCache(tmp_path) as cache:
        cache.put_core("k1", "ont-a", "{}")
        path = cache.path
    connection = sqlite3.connect(path)
    connection.execute(
        "UPDATE meta SET value = '3' WHERE key = 'schema_version'"
    )
    connection.commit()
    connection.close()
    with RewritingCache(tmp_path) as cache:
        assert cache.get_core("k1") is None
        assert cache.counts() == {"ucq": 0, "datalog": 0, "cores": 0}


def test_core_api_never_raises_on_closed_cache(tmp_path):
    cache = RewritingCache(tmp_path)
    cache.close()
    assert cache.get_core("k1") is None
    cache.put_core("k1", "ont-a", "{}")  # silently dropped
    assert cache.counts() == {"ucq": 0, "datalog": 0, "cores": 0}
