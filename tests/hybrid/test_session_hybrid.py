"""Session-level integration tests for the hybrid answering regime.

Every mode of ``EngineOptions.hybrid`` must produce the same certain
answers on both evaluation backends, mutations must keep the
materialized state synchronized with the pure-rewriting reference, and
the persistent cache must round-trip core snapshots across sessions.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.api import EngineOptions, Session
from repro.hybrid.cost import HybridChoice
from repro.hybrid.maintain import MIN_DELTA_FLOOR
from repro.lang.parser import parse_database, parse_program
from repro.obs import InMemorySink

# Terminating (weakly acyclic) with an existential: every hybrid mode
# is feasible and must agree with plain rewriting.
TERMINATING = parse_program(
    """
    R1: professor(X) -> teaches(X, Y).
    R2: assoc_prof(X) -> professor(X).
    """
)
TERMINATING_DATA = "professor(ada). assoc_prof(bob)."
TERMINATING_QUERIES = (
    "q(X) :- professor(X)",
    "q(X) :- teaches(X, Y)",
    "q(X, Y) :- teaches(X, Y)",
)

# Non-terminating but separable: emp->person is the chase-safe core,
# the person/knows existential cycle stays residual, handled by
# rewriting.  The full chase never terminates, so SPLIT is the only
# way any materialization can happen here.
SEPARABLE = parse_program(
    """
    E: emp(X) -> person(X).
    K: person(X) -> knows(X, Y).
    B: knows(X, Y) -> person(Y).
    """
)
SEPARABLE_DATA = "emp(ada). emp(bob). person(carl)."
SEPARABLE_QUERIES = (
    "q(X) :- person(X)",
    "q(X) :- knows(X, Y)",
    "q(X) :- emp(X), knows(X, Y)",
)

MODES = ("off", "auto", "rewrite", "split", "materialize")


def database(text: str):
    from repro.data.database import Database

    return Database(parse_database(text))


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("backend", ["memory", "sql"])
def test_every_mode_agrees_on_terminating_ontologies(mode, backend):
    reference = {}
    with Session(TERMINATING, database(TERMINATING_DATA)) as session:
        for query in TERMINATING_QUERIES:
            reference[query] = session.answer(query)
    options = EngineOptions(hybrid=mode)
    with Session(
        TERMINATING, database(TERMINATING_DATA), options=options
    ) as session:
        for query in TERMINATING_QUERIES:
            assert (
                session.answer(query, backend=backend) == reference[query]
            ), f"mode={mode} backend={backend} query={query}"


@pytest.mark.parametrize("backend", ["memory", "sql"])
def test_materialize_tracks_mutations_against_chase_oracle(backend):
    options = EngineOptions(hybrid="materialize")
    with Session(
        TERMINATING, database(TERMINATING_DATA), options=options
    ) as session:
        # The core is built lazily with the first answer; mutations
        # before that see no materialized state to maintain.
        assert session.insert("assoc_prof(zed).") is None
        session.answer(TERMINATING_QUERIES[0])
        maintained = session.insert("assoc_prof(carl). professor(dee).")
        assert maintained is not None
        assert not maintained.full_rechase
        maintained = session.delete("professor(ada).")
        assert maintained is not None
        for query in TERMINATING_QUERIES:
            assert session.answer(query, backend=backend) == (
                session.answer_chase(query)
            ), f"query={query} diverged from the chase oracle"


def test_split_matches_pure_rewriting_across_mutations():
    reference = Session(SEPARABLE, database(SEPARABLE_DATA))
    hybrid = Session(
        SEPARABLE,
        database(SEPARABLE_DATA),
        options=EngineOptions(hybrid="split"),
    )
    with reference, hybrid:
        decision = hybrid.hybrid_decision()
        assert decision is not None
        assert decision.choice is HybridChoice.SPLIT
        mutations = (
            ("insert", "emp(dana)."),
            ("insert", "person(eve). knows(eve, frank)."),
            ("delete", "emp(ada)."),
            ("delete", "person(carl)."),
        )
        for backend in ("memory", "sql"):
            for query in SEPARABLE_QUERIES:
                assert hybrid.answer(query, backend=backend) == (
                    reference.answer(query)
                ), f"pre-mutation query={query} backend={backend}"
        for op, text in mutations:
            maintained = getattr(hybrid, op)(text)
            getattr(reference, op)(text)
            assert maintained is not None
            assert not maintained.full_rechase
            for backend in ("memory", "sql"):
                for query in SEPARABLE_QUERIES:
                    assert hybrid.answer(query, backend=backend) == (
                        reference.answer(query)
                    ), f"after {op} {text!r}: query={query} backend={backend}"


def test_large_delta_falls_back_to_full_rechase():
    sink = InMemorySink()
    options = EngineOptions(hybrid="materialize", hybrid_threshold=0.5)
    with Session(
        TERMINATING, database("professor(seed)."), options=options
    ) as session:
        session.answer("q(X) :- professor(X)")  # build the core
        batch = ". ".join(
            f"professor(n{i})" for i in range(MIN_DELTA_FLOOR + 2)
        )
        with obs.use(sink, inherit=False):
            maintained = session.insert(batch + ".")
        assert maintained is not None
        assert maintained.full_rechase
        assert sink.counters().get("hybrid.full_rechase") == 1
        # The rebuilt closure still answers correctly on both backends.
        for backend in ("memory", "sql"):
            answers = session.answer(
                "q(X) :- teaches(X, Y)", backend=backend
            )
            assert len(answers) == MIN_DELTA_FLOOR + 3


def test_mutations_do_not_leak_into_the_caller_database():
    source = database(TERMINATING_DATA)
    before = set(source.facts())
    options = EngineOptions(hybrid="materialize")
    with Session(TERMINATING, source, options=options) as session:
        session.insert("professor(new).")
        session.delete("professor(ada).")
        assert set(source.facts()) == before


def test_hybrid_decision_exposure():
    with Session(TERMINATING, database(TERMINATING_DATA)) as session:
        assert session.hybrid_decision() is None  # hybrid="off" default
    with Session(
        TERMINATING,
        database(TERMINATING_DATA),
        options=EngineOptions(hybrid="materialize"),
    ) as session:
        decision = session.hybrid_decision()
        assert decision is not None
        assert decision.choice is HybridChoice.MATERIALIZE
        assert decision.forced
    with Session(
        TERMINATING,
        database(TERMINATING_DATA),
        options=EngineOptions(hybrid="auto"),
    ) as session:
        decision = session.hybrid_decision()
        assert decision is not None
        assert decision.choice.value in decision.feasible


def test_core_snapshot_round_trips_through_the_persistent_cache(tmp_path):
    options = EngineOptions(hybrid="materialize")
    query = "q(X) :- teaches(X, Y)"
    with Session(
        TERMINATING,
        database(TERMINATING_DATA),
        cache_dir=tmp_path,
        options=options,
    ) as session:
        first = session.answer(query)
        stats = session.cache_stats()
        assert stats["persistent"]["core_entries"] == 1
    sink = InMemorySink()
    with Session(
        TERMINATING,
        database(TERMINATING_DATA),
        cache_dir=tmp_path,
        options=options,
    ) as session:
        with obs.use(sink, inherit=False):
            second = session.answer(query)
    assert second == first
    counters = sink.counters()
    assert counters.get("hybrid.core_cache.hits") == 1
    assert "hybrid.core_cache.misses" not in counters


def test_invalid_hybrid_options_are_rejected():
    with pytest.raises(ValueError):
        EngineOptions(hybrid="sometimes")
    with pytest.raises(ValueError):
        EngineOptions(hybrid_threshold=0.0)
