"""Integration tests: every checkable claim of the paper (E1-E12).

Each test class corresponds to an experiment id in DESIGN.md §4 and is
the pass/fail core of the corresponding bench.
"""

import random

import pytest

from repro.chase.certain import certain_answers
from repro.core.classify import classify
from repro.core.swr import is_swr
from repro.core.wr import is_wr
from repro.data.database import Database
from repro.data.evaluation import evaluate_ucq
from repro.graphs.position_graph import build_position_graph
from repro.graphs.pnode_graph import build_pnode_graph
from repro.lang.parser import parse_query
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.rewriter import rewrite
from repro.workloads.generators import generate_database
from repro.workloads.paper import (
    EXAMPLE1_QUERY,
    EXAMPLE2_QUERY,
    example1,
    example2,
    example3,
)


class TestE1Figure1:
    """Figure 1 + 'no s-edges => SWR'."""

    def test_no_s_edges_and_swr(self):
        graph = build_position_graph(example1())
        assert graph.s_edges() == ()
        assert is_swr(example1()).is_swr


class TestE2Example1FORewritability:
    """Theorem 1 instantiated: Example 1's rewriting terminates and
    matches chase-certain answers on random databases."""

    def test_rewriting_terminates(self):
        assert rewrite(EXAMPLE1_QUERY, example1()).complete

    @pytest.mark.parametrize("seed", range(5))
    def test_rewriting_equals_chase(self, seed):
        rules = example1()
        facts = generate_database(
            random.Random(seed), rules, facts_per_relation=4, domain_size=5
        )
        database = Database(facts)
        result = rewrite(EXAMPLE1_QUERY, rules)
        rewriting_answers = evaluate_ucq(result.ucq, database)
        chase_answers = certain_answers(EXAMPLE1_QUERY, rules, database)
        assert rewriting_answers == chase_answers


class TestE3Figure2:
    """The position graph wrongly passes Example 2."""

    def test_position_graph_criterion_passes(self):
        result = is_swr(example2())
        assert result.graph_condition      # the graph sees no danger
        assert not result.simple           # but the set is not simple
        assert not result.is_swr


class TestE4UnboundedChain:
    """q() :- r("a", x) has an unbounded rewriting chain."""

    def test_join_width_grows_with_depth(self):
        widths = []
        for depth in (2, 4, 6, 8, 10):
            result = rewrite(
                EXAMPLE2_QUERY, example2(), RewritingBudget(max_depth=depth)
            )
            assert not result.complete
            widths.append(result.max_body_atoms)
        assert widths == sorted(widths)
        assert widths[-1] >= widths[0] + 3  # genuine growth, not noise


class TestE5Figure3:
    """The P-node graph catches Example 2 (Definition 8)."""

    def test_not_wr_with_witness(self):
        result = is_wr(example2())
        assert not result.is_wr
        labels = set().union(*(e.labels for e in result.dangerous_cycle))
        assert {"d", "m", "s"} <= labels and "i" not in labels

    def test_figure3_node_inventory(self):
        graph = build_pnode_graph(example2())
        names = {str(n) for n in graph.pnodes}
        for expected in ("r(x1, x2)", "s(x1, x1, x2)", "s(z, z, x1)"):
            assert expected in names


class TestE6Example3:
    """Example 3: outside the four named classes and SWR, yet WR and
    FO-rewritable."""

    def test_class_escapes(self):
        report = classify(example3())
        memberships = report.memberships()
        for name in ("linear", "multilinear", "sticky", "sticky-join", "SWR"):
            assert memberships[name] is False, name
        assert memberships["WR"] is True

    @pytest.mark.parametrize(
        "query_text",
        [
            "q(X, Y) :- r(X, Y)",
            "q(X, Y, Z) :- s(X, Y, Z)",
            "q() :- t(X, Y, Z)",
            "q(X) :- u(X), t(X, X, Y)",
        ],
    )
    def test_fo_rewritable_queries_terminate_and_match_chase(
        self, query_text
    ):
        rules = example3()
        query = parse_query(query_text)
        result = rewrite(query, rules)
        assert result.complete
        for seed in range(3):
            facts = generate_database(
                random.Random(seed), rules, facts_per_relation=4,
                domain_size=4,
            )
            database = Database(facts)
            assert evaluate_ucq(result.ucq, database) == certain_answers(
                query, rules, database, max_steps=50_000
            )


class TestE7Subsumption:
    """Section 5: over simple TGDs, SWR ⊇ Linear/Multilinear/Sticky/
    Sticky-Join (empirically, over random sets)."""

    @pytest.mark.parametrize("seed", range(15))
    def test_baselines_imply_swr_on_simple_sets(self, seed):
        from repro.classes.linear import is_linear, is_multilinear
        from repro.classes.sticky import is_sticky, is_sticky_join
        from repro.workloads.generators import random_simple

        rules = random_simple(
            random.Random(seed), n_rules=4, n_relations=4, max_arity=3
        )
        assert all(r.is_simple() for r in rules)
        in_baseline = (
            is_linear(rules).member
            or is_multilinear(rules).member
            or is_sticky(rules).member
            or is_sticky_join(rules).member
        )
        if in_baseline:
            assert is_swr(rules).is_swr, [str(r) for r in rules]

    def test_strictness_witness(self):
        """A set that is SWR but in none of the four baselines."""
        from repro.classes.linear import is_linear, is_multilinear
        from repro.classes.sticky import is_sticky, is_sticky_join
        from repro.workloads.generators import swr_but_not_baselines

        rules = swr_but_not_baselines()
        assert is_swr(rules).is_swr
        assert not is_linear(rules).member
        assert not is_multilinear(rules).member
        assert not is_sticky(rules).member
        assert not is_sticky_join(rules).member


class TestE11DLLite:
    """DL-Lite_R TBoxes translate into SWR TGDs."""

    def test_random_tboxes_always_swr(self):
        from repro.dlite.syntax import (
            AtomicConcept,
            AtomicRole,
            ConceptInclusion,
            Exists,
            Inverse,
            RoleInclusion,
            TBox,
        )
        from repro.dlite.translate import tbox_to_tgds

        rng = random.Random(11)
        concepts = [AtomicConcept(f"c{i}") for i in range(4)]
        roles = [AtomicRole(f"p{i}") for i in range(3)]
        for _ in range(10):
            axioms = []
            for _ in range(8):
                if rng.random() < 0.7:
                    side = lambda: (
                        rng.choice(concepts)
                        if rng.random() < 0.5
                        else Exists(
                            rng.choice(roles)
                            if rng.random() < 0.5
                            else Inverse(rng.choice(roles))
                        )
                    )
                    axioms.append(ConceptInclusion(side(), side()))
                else:
                    side = lambda: (
                        rng.choice(roles)
                        if rng.random() < 0.5
                        else Inverse(rng.choice(roles))
                    )
                    axioms.append(RoleInclusion(side(), side()))
            rules = tbox_to_tgds(TBox(tuple(axioms)))
            assert is_swr(rules).is_swr


class TestE12Approximation:
    """Section 7: sound, convergent approximation for non-WR sets."""

    def test_approximation_sound_and_growing(self):
        from repro.rewriting.approx import approximate_answers
        from repro.lang.parser import parse_database

        rules = example2()
        database = Database(
            parse_database("t(a, a). t(b, a). s(c, c, a). r(a, d).")
        )
        report = approximate_answers(
            EXAMPLE2_QUERY, rules, database, max_depth=6
        )
        truth = certain_answers(EXAMPLE2_QUERY, rules, database)
        assert report.answers <= truth
        counts = list(report.answer_counts)
        assert counts == sorted(counts)
