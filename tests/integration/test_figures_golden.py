"""Golden tests: the regenerated paper figures, pinned edge by edge.

The benches regenerate Figures 1–3 as artifacts; these tests pin the
exact structural content so any change to the graph constructions is
caught immediately (and consciously) rather than silently altering the
reproduction.
"""

from repro.graphs.pnode_graph import build_pnode_graph
from repro.graphs.position_graph import build_position_graph
from repro.workloads.paper import example1, example2

FIGURE1_EDGES = {
    ("r[ ]", "s[ ]", ""),
    ("r[ ]", "s[2]", ""),
    ("r[ ]", "t[ ]", "m"),
    ("r[ ]", "t[1]", "m"),
    ("s[ ]", "v[ ]", ""),
    ("s[ ]", "q0[ ]", "m"),
    ("v[ ]", "r[ ]", ""),
}

FIGURE2_NODES = {
    "r[ ]", "r[1]", "r[2]",
    "s[ ]", "s[1]", "s[2]", "s[3]",
    "t[ ]", "t[1]", "t[2]",
}


def edge_set(graph):
    return {
        (str(e.source), str(e.target), ",".join(sorted(e.labels)))
        for e in graph.edges
    }


class TestFigure1Golden:
    def test_exact_edge_set(self):
        graph = build_position_graph(example1())
        assert edge_set(graph) == FIGURE1_EDGES

    def test_exact_node_count(self):
        graph = build_position_graph(example1())
        assert len(graph.positions) == 7


class TestFigure2Golden:
    def test_exact_node_set(self):
        graph = build_position_graph(example2())
        assert {str(p) for p in graph.positions} == FIGURE2_NODES

    def test_edge_count_and_label_profile(self):
        graph = build_position_graph(example2())
        assert len(graph.edges) == 22
        labels = sorted(
            ",".join(sorted(e.labels)) for e in graph.edges
        )
        # 15 m-labeled edges, 7 unlabeled, no s anywhere.
        assert labels.count("m") == 15
        assert labels.count("") == 7


class TestFigure3Golden:
    def test_node_count_and_inventory(self):
        graph = build_pnode_graph(example2())
        names = {str(n) for n in graph.pnodes}
        assert len(names) == 14
        for figure_atom in (
            "r(x1, x2)",
            "s(x1, x2, x3)",
            "s(x1, x1, x2)",
            "s(z, z, x1)",
        ):
            assert figure_atom in names

    def test_dangerous_cycle_label_profile(self):
        graph = build_pnode_graph(example2())
        witness = graph.dangerous_cycle()
        profiles = {",".join(sorted(e.labels)) for e in witness}
        assert "d,m,s" in profiles

    def test_edge_count(self):
        graph = build_pnode_graph(example2())
        assert len(graph.edges) == 24
