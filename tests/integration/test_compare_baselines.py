"""Unit tests for the perf-regression gate (benchmarks/compare_baselines.py).

The ``--only`` filter is what lets a CI job gate exactly the artifact
it produced (serve-smoke gates ``serving_load.json``) without staging
a filtered copy of the baseline directory.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "compare_baselines.py"
)

spec = importlib.util.spec_from_file_location("compare_baselines", SCRIPT)
compare_baselines = importlib.util.module_from_spec(spec)
spec.loader.exec_module(compare_baselines)


@pytest.fixture()
def dirs(tmp_path):
    out = tmp_path / "out"
    baselines = tmp_path / "baselines"
    out.mkdir()
    baselines.mkdir()
    return out, baselines


def write(directory: Path, name: str, payload: dict) -> None:
    (directory / name).write_text(json.dumps(payload))


def run(out: Path, baselines: Path, *extra: str) -> int:
    return compare_baselines.run(
        ["--out-dir", str(out), "--baseline-dir", str(baselines), *extra]
    )


def test_matching_artifacts_pass(dirs, capsys):
    out, baselines = dirs
    write(out, "alpha.json", {"counters": {"hits": 10}})
    write(baselines, "alpha.json", {"counters": {"hits": 10}})
    assert run(out, baselines) == 0
    assert "ok alpha.json" in capsys.readouterr().out.replace("  ", " ")


def test_drift_fails_without_only(dirs):
    out, baselines = dirs
    write(out, "alpha.json", {"counters": {"hits": 10}})
    write(baselines, "alpha.json", {"counters": {"hits": 10}})
    write(out, "beta.json", {"counters": {"misses": 100}})
    write(baselines, "beta.json", {"counters": {"misses": 1}})
    assert run(out, baselines) == 1


def test_only_restricts_the_gate_to_named_artifacts(dirs):
    out, baselines = dirs
    write(out, "alpha.json", {"counters": {"hits": 10}})
    write(baselines, "alpha.json", {"counters": {"hits": 10}})
    # beta drifts badly, but --only alpha must not look at it.
    write(out, "beta.json", {"counters": {"misses": 100}})
    write(baselines, "beta.json", {"counters": {"misses": 1}})
    assert run(out, baselines, "--only", "alpha") == 0
    # The filter accepts the filename spelling too, and is repeatable.
    assert run(out, baselines, "--only", "alpha.json") == 0
    assert run(out, baselines, "--only", "alpha", "--only", "beta") == 1


def test_only_with_missing_artifact_is_an_error(dirs, capsys):
    out, baselines = dirs
    write(out, "alpha.json", {"counters": {"hits": 10}})
    write(baselines, "alpha.json", {"counters": {"hits": 10}})
    assert run(out, baselines, "--only", "nonexistent") == 2
    assert "matched no artifacts" in capsys.readouterr().out


def test_only_catches_a_missing_artifact_for_its_baseline(dirs, capsys):
    # A baseline committed for the selected name but no artifact
    # produced is a hard failure, not a silent skip.
    out, baselines = dirs
    write(out, "alpha.json", {"counters": {"hits": 10}})
    write(out, "beta.json", {"counters": {"misses": 1}})
    write(baselines, "beta.json", {"counters": {"misses": 1}})
    write(baselines, "alpha.json", {"counters": {"hits": 10}})
    (out / "alpha.json").unlink()
    assert run(out, baselines, "--only", "alpha") == 2
    assert "matched no artifacts" in capsys.readouterr().out


def test_timings_exempt_by_default_but_gated_on_request(dirs):
    out, baselines = dirs
    write(out, "alpha.json", {"eval_ms": 500.0, "counters": {"hits": 10}})
    write(baselines, "alpha.json", {"eval_ms": 1.0, "counters": {"hits": 10}})
    assert run(out, baselines) == 0
    assert run(out, baselines, "--check-timings") == 1


def test_update_baselines_respects_only(dirs):
    out, baselines = dirs
    write(out, "alpha.json", {"counters": {"hits": 11}})
    write(out, "beta.json", {"counters": {"misses": 5}})
    write(baselines, "alpha.json", {"counters": {"hits": 10}})
    assert run(out, baselines, "--only", "alpha", "--update-baselines") == 0
    refreshed = json.loads((baselines / "alpha.json").read_text())
    assert refreshed == {"counters": {"hits": 11}}
    assert not (baselines / "beta.json").exists()
