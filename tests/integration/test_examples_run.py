"""Every example script must run to completion.

The examples are part of the public surface; this test executes each
one in a subprocess and requires a zero exit code, so a library change
that breaks an example fails the suite rather than rotting silently.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout[-2000:]}\n"
        f"{result.stderr[-2000:]}"
    )


def test_examples_exist():
    names = {script.name for script in SCRIPTS}
    assert "quickstart.py" in names
    assert len(names) >= 5
