"""Randomized cross-validation: FO rewriting == chase certain answers.

The strongest correctness evidence in the repo: on randomly generated
rule sets (restricted to weakly-acyclic inputs, where the chase is a
terminating ground truth) and random databases, the rewriting pipeline
must produce exactly the certain answers for randomly chosen atomic
and conjunctive queries.
"""

import random

import pytest

from repro.chase.certain import certain_answers
from repro.lang.errors import ChaseBudgetExceeded
from repro.chase.termination import is_weakly_acyclic
from repro.data.database import Database
from repro.data.evaluation import evaluate_ucq
from repro.lang.atoms import Atom
from repro.lang.queries import ConjunctiveQuery
from repro.lang.signature import Signature
from repro.lang.terms import Variable
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.rewriter import rewrite
from repro.workloads.generators import (
    generate_database,
    random_linear,
    random_simple,
)


def atomic_queries(rules, limit=4):
    """One atomic query per relation (answer = first argument)."""
    signature = Signature.from_rules(rules)
    queries = []
    for relation in signature.relations()[:limit]:
        arity = signature[relation]
        variables = [Variable(f"Q{i}") for i in range(arity)]
        answers = variables[:1] if arity else []
        queries.append(
            ConjunctiveQuery(answers, [Atom(relation, variables)])
        )
    return queries


def check_agreement(rules, seed, budget=None):
    # The time ceiling matters more than the counts: on random
    # non-FO-rewritable sets the saturation's CQs keep growing and a
    # count budget alone can burn minutes (the test then skips, which
    # is the intended behaviour for inputs outside the classes).
    budget = budget or RewritingBudget(
        max_depth=25, max_cqs=20_000, max_seconds=10
    )
    rng = random.Random(seed)
    facts = generate_database(rng, rules, facts_per_relation=4, domain_size=5)
    database = Database(facts)
    for query in atomic_queries(rules):
        result = rewrite(query, rules, budget)
        if not result.complete:
            continue  # outside FO-rewritable territory; skip
        left = evaluate_ucq(result.ucq, database)
        try:
            right = certain_answers(
                query, rules, database, max_steps=20_000
            )
        except ChaseBudgetExceeded:
            continue  # combinatorially large chase; skip this query
        assert left == right, (
            f"mismatch for {query} over {[str(r) for r in rules]}"
        )


class TestRandomLinear:
    @pytest.mark.parametrize("seed", range(10))
    def test_linear_rules_agree(self, seed):
        rules = random_linear(random.Random(seed), n_rules=5)
        if not is_weakly_acyclic(rules):
            pytest.skip("chase ground truth unavailable")
        check_agreement(rules, seed)


class TestRandomSimple:
    @pytest.mark.parametrize("seed", range(10))
    def test_simple_rules_agree(self, seed):
        rules = random_simple(
            random.Random(1000 + seed), n_rules=4, n_relations=4, max_arity=3
        )
        if not is_weakly_acyclic(rules):
            pytest.skip("chase ground truth unavailable")
        check_agreement(rules, seed)


class TestJoinQueries:
    @pytest.mark.parametrize("seed", range(5))
    def test_two_atom_join_queries_agree(self, seed):
        rules = random_linear(random.Random(2000 + seed), n_rules=4)
        if not is_weakly_acyclic(rules):
            pytest.skip("chase ground truth unavailable")
        rng = random.Random(seed)
        facts = generate_database(
            rng, rules, facts_per_relation=4, domain_size=4
        )
        database = Database(facts)
        signature = Signature.from_rules(rules)
        relations = [
            r for r in signature.relations() if signature[r] >= 1
        ][:2]
        if len(relations) < 2:
            pytest.skip("not enough relations")
        first, second = relations
        shared = Variable("J")
        body = [
            Atom(
                first,
                [shared]
                + [Variable(f"A{i}") for i in range(signature[first] - 1)],
            ),
            Atom(
                second,
                [shared]
                + [Variable(f"B{i}") for i in range(signature[second] - 1)],
            ),
        ]
        query = ConjunctiveQuery([shared], body)
        result = rewrite(
            query,
            rules,
            RewritingBudget(max_depth=25, max_cqs=20_000, max_seconds=10),
        )
        if not result.complete:
            pytest.skip("rewriting did not complete")
        try:
            truth = certain_answers(query, rules, database, max_steps=20_000)
        except ChaseBudgetExceeded:
            pytest.skip("combinatorially large chase")
        assert evaluate_ucq(result.ucq, database) == truth


class TestOntologies:
    def test_university_random_sizes(self):
        from repro.workloads.ontologies import (
            university_data,
            university_ontology,
            university_queries,
        )

        rules = university_ontology()
        for size in (5, 15):
            database = university_data(size, seed=size)
            for _, query in university_queries():
                result = rewrite(query, rules)
                assert result.complete
                assert evaluate_ucq(result.ucq, database) == certain_answers(
                    query, rules, database
                )
