"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main

PROGRAM = """
r1: a(X) -> b(X).
r2: b(X) -> c(X).
"""

DANGEROUS = """
R1: t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).
R2: s(Y1, Y1, Y2) -> r(Y2, Y3).
"""

FACTS = "a(one). b(two)."


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.dlp"
    path.write_text(PROGRAM)
    return str(path)


@pytest.fixture
def facts_file(tmp_path):
    path = tmp_path / "facts.dlp"
    path.write_text(FACTS)
    return str(path)


class TestClassify:
    def test_table_printed(self, program_file, capsys):
        assert main(["classify", program_file]) == 0
        out = capsys.readouterr().out
        assert "SWR" in out and "linear" in out

    def test_explain_flag(self, program_file, capsys):
        assert main(["classify", program_file, "--explain"]) == 0
        assert "SWR: True" in capsys.readouterr().out


class TestRewrite:
    def test_datalog_output(self, program_file, capsys):
        assert main(["rewrite", program_file, "q(X) :- c(X)"]) == 0
        out = capsys.readouterr().out
        assert "a(X)" in out and "b(X)" in out and "c(X)" in out

    def test_sql_output(self, program_file, capsys):
        assert main(["rewrite", program_file, "q(X) :- c(X)", "--sql"]) == 0
        assert "SELECT" in capsys.readouterr().out

    def test_incomplete_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.dlp"
        path.write_text(DANGEROUS)
        code = main(
            [
                "rewrite",
                str(path),
                'q() :- r("a", X)',
                "--max-depth",
                "4",
            ]
        )
        assert code == 3
        assert "incomplete" in capsys.readouterr().err


class TestAnswer:
    def test_answers_printed(self, program_file, facts_file, capsys):
        assert main(["answer", program_file, "q(X) :- c(X)", facts_file]) == 0
        out = capsys.readouterr().out
        assert '"one"' in out and '"two"' in out

    def test_via_chase_agrees(self, program_file, facts_file, capsys):
        main(["answer", program_file, "q(X) :- c(X)", facts_file])
        rewriting_out = capsys.readouterr().out
        main(
            [
                "answer",
                program_file,
                "q(X) :- c(X)",
                facts_file,
                "--via-chase",
            ]
        )
        chase_out = capsys.readouterr().out
        assert rewriting_out == chase_out

    def test_boolean_query(self, program_file, facts_file, capsys):
        assert main(["answer", program_file, "q() :- c(X)", facts_file]) == 0
        assert capsys.readouterr().out.strip() == "true"


class TestGraph:
    def test_position_summary(self, program_file, capsys):
        assert main(["graph", program_file, "position"]) == 0
        assert "nodes" in capsys.readouterr().out

    def test_pnode_dot(self, program_file, capsys):
        assert main(["graph", program_file, "pnode", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")


class TestErrors:
    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "broken.dlp"
        path.write_text("a(X) -> ")
        assert main(["classify", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestRewriteExplain:
    def test_derivations_annotated(self, program_file, capsys):
        assert (
            main(["rewrite", program_file, "q(X) :- c(X)", "--explain"])
            == 0
        )
        out = capsys.readouterr().out
        assert "<= apply r2, apply r1" in out

    def test_input_disjunct_unannotated(self, program_file, capsys):
        main(["rewrite", program_file, "q(X) :- c(X)", "--explain"])
        out_lines = capsys.readouterr().out.splitlines()
        assert any(
            line.endswith("q(X) :- c(X).") for line in out_lines
        )


class TestGraphStats:
    def test_census_appended(self, program_file, capsys):
        assert main(["graph", program_file, "position", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "nodes:" in out and "SCCs:" in out

    def test_dangerous_labels_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.dlp"
        path.write_text(DANGEROUS)
        main(["graph", str(path), "pnode", "--stats"])
        out = capsys.readouterr().out
        assert "{d,m,s}" in out


class TestMinimizeWorkers:
    def test_rewrite_output_is_identical(self, program_file, capsys):
        assert main(["rewrite", program_file, "q(X) :- c(X)"]) == 0
        sequential = capsys.readouterr().out
        assert (
            main(
                [
                    "rewrite",
                    program_file,
                    "q(X) :- c(X)",
                    "--minimize-workers",
                    "2",
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == sequential

    def test_answer_accepts_the_flags(
        self, program_file, facts_file, capsys
    ):
        code = main(
            [
                "answer",
                program_file,
                "q(X) :- c(X)",
                facts_file,
                "--minimize-workers",
                "2",
                "--minimize-mode",
                "thread",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "one" in out and "two" in out


class TestTargetFlag:
    """``--target {ucq,datalog,auto}`` on rewrite/answer/trace."""

    def test_rewrite_datalog_prints_rule_program(
        self, program_file, capsys
    ):
        assert (
            main(
                [
                    "rewrite",
                    program_file,
                    "q(X) :- c(X)",
                    "--target",
                    "datalog",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "->" in out  # rule syntax, not a UCQ union
        assert "a(" in out and "c(" in out

    def test_rewrite_datalog_sql_prints_cte(self, program_file, capsys):
        assert (
            main(
                [
                    "rewrite",
                    program_file,
                    "q(X) :- c(X)",
                    "--sql",
                    "--target",
                    "datalog",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.startswith("WITH ")
        assert "SELECT DISTINCT" in out

    def test_rewrite_explain_reports_selected_target(
        self, program_file, capsys
    ):
        import json as _json

        assert (
            main(
                [
                    "rewrite",
                    program_file,
                    "q(X) :- c(X)",
                    "--explain",
                    "--target",
                    "auto",
                ]
            )
            == 0
        )
        explain = _json.loads(capsys.readouterr().out)
        assert explain["target"] == "auto"
        assert explain["target_selected"] in ("ucq", "datalog")

    def test_answer_targets_agree(self, program_file, facts_file, capsys):
        main(["answer", program_file, "q(X) :- c(X)", facts_file])
        default_out = capsys.readouterr().out
        for target in ("datalog", "auto"):
            assert (
                main(
                    [
                        "answer",
                        program_file,
                        "q(X) :- c(X)",
                        facts_file,
                        "--target",
                        target,
                    ]
                )
                == 0
            )
            assert capsys.readouterr().out == default_out

    def test_answer_sql_backend_with_datalog_target(
        self, program_file, facts_file, capsys
    ):
        main(["answer", program_file, "q(X) :- c(X)", facts_file])
        default_out = capsys.readouterr().out
        code = main(
            [
                "answer",
                program_file,
                "q(X) :- c(X)",
                facts_file,
                "--backend",
                "sql",
                "--target",
                "datalog",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == default_out

    def test_trace_reports_target_line(self, program_file, capsys):
        assert (
            main(
                [
                    "trace",
                    program_file,
                    "q(X) :- c(X)",
                    "--target",
                    "datalog",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "target:" in out
        assert "datalog" in out
        assert "rule(s)" in out

    def test_rejects_unknown_target(self, program_file, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "rewrite",
                    program_file,
                    "q(X) :- c(X)",
                    "--target",
                    "prolog",
                ]
            )
