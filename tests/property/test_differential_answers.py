"""Differential property suite: rewriting vs chase vs SQL.

Three independently implemented answering paths must agree on every
input where all of them are exact:

* ``FORewritingEngine.answer``      -- FO rewriting + in-memory eval;
* chase certain answers             -- restricted chase + filtered eval;
* ``FORewritingEngine.answer_sql``  -- FO rewriting compiled to SQLite.

The generated programs are *stratified*: every rule's body relations
strictly precede its head relation in a fixed relation order.  Such
programs are non-recursive, hence SWR (so the rewriting terminates and
is exact) and weakly acyclic (so the chase reaches a fixpoint) -- both
sides of the differential are total, and any disagreement is a real
bug in one of the engines.

Across its tests this module checks well over 200 generated
program/database/query triples per run (explicit ``max_examples``
below, independent of the active hypothesis profile).
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.chase.certain import certain_answers
from repro.core.swr import is_swr
from repro.data.database import Database
from repro.data.sql import SQLiteBackend
from repro.lang.atoms import Atom
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.signature import Signature
from repro.lang.terms import Constant, Variable
from repro.lang.tgd import TGD
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.engine import FORewritingEngine

# --------------------------------------------------------------------- #
# Strategies                                                             #
# --------------------------------------------------------------------- #

# Relations in stratification order: a rule's body may only use
# relations strictly earlier than its head relation.
ORDER = ("a", "r", "b", "s", "c")
ARITY = {"a": 1, "r": 2, "b": 1, "s": 2, "c": 1}

BODY_VARS = [Variable(f"V{i}") for i in range(4)]
EXIST_VARS = [Variable("E0"), Variable("E1")]
QUERY_VARS = [Variable(f"X{i}") for i in range(3)]
CONSTANTS = [Constant("c1"), Constant("c2"), Constant("c3")]


@st.composite
def stratified_tgds(draw):
    """One TGD whose body relations strictly precede its head relation."""
    head_index = draw(st.integers(1, len(ORDER) - 1))
    body = []
    for _ in range(draw(st.integers(1, 2))):
        relation = ORDER[draw(st.integers(0, head_index - 1))]
        terms = [
            draw(st.sampled_from(BODY_VARS))
            for _ in range(ARITY[relation])
        ]
        body.append(Atom(relation, terms))
    body_vars = sorted(
        {v for atom in body for v in atom.variables()},
        key=lambda v: v.name,
    )
    head_relation = ORDER[head_index]
    head_terms = [
        draw(st.sampled_from(body_vars + EXIST_VARS))
        for _ in range(ARITY[head_relation])
    ]
    # Keep the rule connected: at least one frontier variable.
    if not (set(head_terms) & set(body_vars)):
        head_terms[0] = body_vars[0]
    return TGD(body, [Atom(head_relation, head_terms)])


@st.composite
def programs(draw):
    return draw(st.lists(stratified_tgds(), min_size=1, max_size=4))


@st.composite
def databases(draw):
    facts = []
    for _ in range(draw(st.integers(0, 8))):
        relation = draw(st.sampled_from(ORDER))
        terms = [
            draw(st.sampled_from(CONSTANTS))
            for _ in range(ARITY[relation])
        ]
        facts.append(Atom(relation, terms))
    return Database(facts)


@st.composite
def queries(draw, max_atoms: int = 2):
    body = []
    for _ in range(draw(st.integers(1, max_atoms))):
        relation = draw(st.sampled_from(ORDER))
        terms = [
            draw(st.sampled_from(QUERY_VARS + CONSTANTS[:1]))
            for _ in range(ARITY[relation])
        ]
        body.append(Atom(relation, terms))
    body_vars = sorted(
        {v for atom in body for v in atom.variables()},
        key=lambda v: v.name,
    )
    answer_count = draw(st.integers(0, min(2, len(body_vars))))
    answers = body_vars[:answer_count]
    return ConjunctiveQuery(answers, body)


@st.composite
def ucq_queries(draw):
    first = draw(queries(max_atoms=1))
    disjuncts = [first]
    for _ in range(draw(st.integers(1, 2))):
        candidate = draw(queries(max_atoms=2))
        if candidate.arity == first.arity:
            disjuncts.append(candidate)
    return UnionOfConjunctiveQueries.of(
        disjuncts[0]
    ) if len(disjuncts) == 1 else UnionOfConjunctiveQueries(disjuncts)


def sqlite_backend(rules, database, query) -> SQLiteBackend:
    """A backend whose schema covers rules, data and query relations."""
    signature = Signature(dict(database.signature))
    for rule in rules:
        signature.observe_tgd(rule)
    signature.observe_query(query)
    backend = SQLiteBackend(signature)
    backend.load(database.facts())
    return backend


# --------------------------------------------------------------------- #
# Differential properties                                                #
# --------------------------------------------------------------------- #


@settings(max_examples=120, deadline=None)
@given(programs(), databases(), queries())
def test_rewriting_chase_and_sql_agree(rules, database, query):
    """The three answering paths agree on stratified (SWR) inputs."""
    assert is_swr(rules).is_swr or not all(r.is_simple() for r in rules)
    oracle = certain_answers(query, rules, database, max_steps=20_000)
    engine = FORewritingEngine(rules)
    via_rewriting = engine.answer(query, database)
    with sqlite_backend(rules, database, query) as backend:
        via_sql = engine.answer_sql(query, backend)
    assert via_rewriting == oracle
    assert via_sql == oracle


@settings(max_examples=60, deadline=None)
@given(programs(), databases(), ucq_queries())
def test_ucq_differential(rules, database, ucq):
    """UCQ inputs: disjunct-level union answers match on every path."""
    oracle = certain_answers(ucq, rules, database, max_steps=20_000)
    engine = FORewritingEngine(rules)
    via_rewriting = engine.answer(ucq, database)
    with sqlite_backend(rules, database, ucq) as backend:
        via_sql = engine.answer_sql(ucq, backend)
    assert via_rewriting == oracle
    assert via_sql == oracle


@settings(max_examples=40, deadline=None)
@given(programs(), databases(), queries())
def test_budgeted_rewriting_is_sound_subset(rules, database, query):
    """A budget-truncated rewriting only ever loses answers."""
    oracle = certain_answers(query, rules, database, max_steps=20_000)
    tight = FORewritingEngine(
        rules, budget=RewritingBudget(max_depth=1, max_cqs=100_000)
    )
    partial = tight.answer(query, database, require_complete=False)
    assert partial <= oracle
    with sqlite_backend(rules, database, query) as backend:
        partial_sql = tight.answer_sql(
            query, backend, require_complete=False
        )
    assert partial_sql <= oracle
    assert partial == partial_sql
