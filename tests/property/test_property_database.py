"""Property-based tests for the database and evaluator."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.data.database import Database
from repro.data.evaluation import evaluate_cq
from repro.data.sql import SQLiteBackend
from repro.lang.atoms import Atom
from repro.lang.queries import ConjunctiveQuery
from repro.lang.terms import Constant, Variable

values = st.integers(min_value=0, max_value=4).map(lambda i: Constant(f"c{i}"))
facts = st.builds(lambda a, b: Atom("e", [a, b]), values, values)
fact_sets = st.lists(facts, max_size=25)

variables = st.sampled_from([Variable("X"), Variable("Y"), Variable("Z")])
query_terms = st.one_of(variables, values)


@st.composite
def queries(draw):
    n_atoms = draw(st.integers(min_value=1, max_value=3))
    body = [
        Atom("e", [draw(query_terms), draw(query_terms)])
        for _ in range(n_atoms)
    ]
    body_vars = sorted(
        {v for a in body for v in a.variables()}, key=lambda v: v.name
    )
    answers = body_vars[: draw(st.integers(0, min(2, len(body_vars))))]
    return ConjunctiveQuery(answers, body)


class TestDatabaseInvariants:
    @given(fact_sets)
    def test_len_equals_distinct_facts(self, fact_list):
        database = Database(fact_list)
        assert len(database) == len(set(fact_list))

    @given(fact_sets)
    def test_iteration_roundtrip(self, fact_list):
        database = Database(fact_list)
        assert set(database) == set(fact_list)

    @given(fact_sets, facts)
    def test_add_then_discard_restores(self, fact_list, extra):
        database = Database(fact_list)
        before = set(database)
        was_new = database.add(extra)
        if was_new:
            database.discard(extra)
        assert set(database) == before

    @given(fact_sets)
    def test_lookup_consistent_with_rows(self, fact_list):
        database = Database(fact_list)
        for row in database.rows("e"):
            assert row in database.lookup("e", 1, row[0])
            assert row in database.lookup("e", 2, row[1])


class TestEvaluatorInvariants:
    @given(queries(), fact_sets)
    @settings(max_examples=100)
    def test_monotone_under_fact_addition(self, query, fact_list):
        small = Database(fact_list[: len(fact_list) // 2])
        large = Database(fact_list)
        assert evaluate_cq(query, small) <= evaluate_cq(query, large)

    @given(queries(), fact_sets)
    @settings(max_examples=100)
    def test_answers_use_active_domain(self, query, fact_list):
        database = Database(fact_list)
        domain = {t for row in database.rows("e") for t in row}
        for row in evaluate_cq(query, database):
            for value in row:
                assert value in domain or any(
                    value == t for t in query.answer_terms
                )

    @given(queries(), fact_sets)
    @settings(max_examples=60, deadline=None)
    def test_sql_backend_agrees_with_evaluator(self, query, fact_list):
        database = Database(fact_list)
        if not fact_list:
            return
        with SQLiteBackend.from_database(database) as backend:
            assert backend.execute_cq(query) == evaluate_cq(query, database)

    @given(queries(), fact_sets)
    @settings(max_examples=60)
    def test_atom_order_irrelevant(self, query, fact_list):
        database = Database(fact_list)
        shuffled = ConjunctiveQuery(
            query.answer_terms, tuple(reversed(query.body))
        )
        assert evaluate_cq(query, database) == evaluate_cq(
            shuffled, database
        )
