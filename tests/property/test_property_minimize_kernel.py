"""Differential property suite: optimized minimization == naive.

The subsumption kernel (filters + freeze cache + bucketed index +
incremental frontier + parallel path) must be a *drop-in* replacement
for the naive quadratic minimizer.  This suite pins that on realistic
workloads: CQ pools drawn from actual rewriting runs over stratified
(hence SWR, hence terminating) generated programs, padded with random
specializations of their own disjuncts so the pools contain genuine
subsumption redundancy -- exactly the population the rewriter's
minimization loop sees.

"Equivalent UCQ" is checked in the strongest possible form: the
optimized paths return the *identical* tuple (same disjuncts, same
order) as the naive reference.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lang.atoms import Atom
from repro.lang.queries import ConjunctiveQuery
from repro.lang.substitution import Substitution
from repro.lang.terms import Constant, Variable
from repro.lang.tgd import TGD
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.rewriter import rewrite
from repro.rewriting.subsume import (
    SubsumptionFrontier,
    kernel_remove_subsumed,
    naive_is_subsumed,
    naive_remove_subsumed,
    parallel_remove_subsumed,
)

# Stratified relation order (see test_differential_answers.py): a
# rule's body relations strictly precede its head relation, so every
# generated program is non-recursive and SWR -- rewriting terminates.
ORDER = ("a", "r", "b", "s", "c")
ARITY = {"a": 1, "r": 2, "b": 1, "s": 2, "c": 1}

BODY_VARS = [Variable(f"V{i}") for i in range(4)]
EXIST_VARS = [Variable("E0"), Variable("E1")]
QUERY_VARS = [Variable(f"X{i}") for i in range(3)]
CONSTANTS = [Constant("c1"), Constant("c2")]


@st.composite
def stratified_tgds(draw):
    head_index = draw(st.integers(1, len(ORDER) - 1))
    body = []
    for _ in range(draw(st.integers(1, 2))):
        relation = ORDER[draw(st.integers(0, head_index - 1))]
        body.append(
            Atom(
                relation,
                [
                    draw(st.sampled_from(BODY_VARS))
                    for _ in range(ARITY[relation])
                ],
            )
        )
    body_vars = sorted(
        {v for atom in body for v in atom.variables()},
        key=lambda v: v.name,
    )
    head_relation = ORDER[head_index]
    head_terms = [
        draw(st.sampled_from(body_vars + EXIST_VARS))
        for _ in range(ARITY[head_relation])
    ]
    if not (set(head_terms) & set(body_vars)):
        head_terms[0] = body_vars[0]
    return TGD(body, [Atom(head_relation, head_terms)])


@st.composite
def programs(draw):
    return draw(st.lists(stratified_tgds(), min_size=1, max_size=4))


@st.composite
def queries(draw, max_atoms: int = 2):
    body = []
    for _ in range(draw(st.integers(1, max_atoms))):
        relation = draw(st.sampled_from(ORDER))
        body.append(
            Atom(
                relation,
                [
                    draw(st.sampled_from(QUERY_VARS + CONSTANTS[:1]))
                    for _ in range(ARITY[relation])
                ],
            )
        )
    body_vars = sorted(
        {v for atom in body for v in atom.variables()},
        key=lambda v: v.name,
    )
    answer_count = draw(st.integers(0, min(2, len(body_vars))))
    return ConjunctiveQuery(body_vars[:answer_count], body)


@st.composite
def rewriting_pools(draw):
    """A CQ pool as the minimizer sees it: the disjuncts a real
    rewriting run generates, plus random specializations of them."""
    rules = draw(programs())
    query = draw(queries())
    result = rewrite(
        query, rules, RewritingBudget(max_depth=6, max_cqs=200)
    )
    disjuncts = list(result.ucq)[:12]
    specialized = []
    for cq in disjuncts:
        if not draw(st.booleans()):
            continue
        answer_vars = set(cq.answer_variables)
        mapping = {}
        for var in cq.body_variables():
            if var not in answer_vars and draw(st.booleans()):
                mapping[var] = draw(
                    st.sampled_from(BODY_VARS + CONSTANTS)
                )
        extra_relation = draw(st.sampled_from(ORDER))
        extra = Atom(
            extra_relation,
            [
                draw(st.sampled_from(QUERY_VARS + CONSTANTS))
                for _ in range(ARITY[extra_relation])
            ],
        )
        base = cq.apply(Substitution(mapping))
        specialized.append(
            ConjunctiveQuery(
                base.answer_terms, list(base.body) + [extra]
            )
        )
    combined = disjuncts + specialized
    draw(st.randoms(use_true_random=False)).shuffle(combined)
    return combined


@settings(max_examples=50, deadline=None)
@given(rewriting_pools())
def test_optimized_minimization_equals_naive_on_swr_pools(queries):
    expected = naive_remove_subsumed(queries)
    assert kernel_remove_subsumed(queries) == expected
    assert parallel_remove_subsumed(queries, max_workers=4) == expected


@settings(max_examples=40, deadline=None)
@given(rewriting_pools())
def test_incremental_frontier_equals_batch_on_swr_pools(queries):
    frontier = SubsumptionFrontier()
    for query in queries:
        frontier.admit(query)
    assert tuple(frontier.queries()) == naive_remove_subsumed(queries)


@settings(max_examples=30, deadline=None)
@given(rewriting_pools())
def test_frontier_covers_matches_one_directional_pruning(queries):
    """The rewriter's prune test: frontier.covers == any(old check)."""
    kept = []
    frontier = SubsumptionFrontier()
    for query in queries:
        covered = any(naive_is_subsumed(query, other) for other in kept)
        assert frontier.covers(query) == covered
        if not covered:
            kept.append(query)
            frontier.add(query)
