"""Property-based tests: semi-naive Datalog vs the restricted chase.

On full (existential-free) TGDs the restricted chase and semi-naive
evaluation must compute exactly the same least fixpoint -- two
independent engines again cross-validating each other.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.chase.chase import restricted_chase
from repro.data.database import Database
from repro.data.datalog import DatalogProgram
from repro.lang.atoms import Atom
from repro.lang.terms import Constant, Variable
from repro.lang.tgd import TGD

RELATIONS = {"a": 1, "b": 1, "r": 2}
VARS = [Variable(f"V{i}") for i in range(3)]
VALUES = [Constant(f"d{i}") for i in range(3)]


@st.composite
def full_rules(draw):
    body = []
    for _ in range(draw(st.integers(1, 2))):
        relation = draw(st.sampled_from(sorted(RELATIONS)))
        body.append(
            Atom(
                relation,
                [draw(st.sampled_from(VARS)) for _ in range(RELATIONS[relation])],
            )
        )
    body_vars = sorted(
        {v for a in body for v in a.variables()}, key=lambda v: v.name
    )
    relation = draw(st.sampled_from(sorted(RELATIONS)))
    head_terms = [
        draw(st.sampled_from(body_vars)) for _ in range(RELATIONS[relation])
    ]
    return TGD(body, [Atom(relation, head_terms)])


programs = st.lists(full_rules(), min_size=1, max_size=3)


@st.composite
def databases(draw):
    facts = []
    for relation, arity in RELATIONS.items():
        for _ in range(draw(st.integers(0, 3))):
            facts.append(
                Atom(
                    relation,
                    [draw(st.sampled_from(VALUES)) for _ in range(arity)],
                )
            )
    return Database(facts)


class TestDatalogChaseAgreement:
    @given(programs, databases())
    @settings(max_examples=60, deadline=None)
    def test_same_fixpoint(self, rules, database):
        semi_naive = DatalogProgram(rules).materialize(database).instance
        chase = restricted_chase(
            list(rules), database, max_steps=50_000
        ).instance
        assert semi_naive == chase

    @given(programs, databases())
    @settings(max_examples=40, deadline=None)
    def test_fixpoint_is_a_fixpoint(self, rules, database):
        program = DatalogProgram(rules)
        once = program.materialize(database).instance
        twice = program.materialize(once).instance
        assert once == twice

    @given(programs, databases(), databases())
    @settings(max_examples=40, deadline=None)
    def test_monotone(self, rules, smaller, larger):
        program = DatalogProgram(rules)
        combined = Database(list(smaller) + list(larger))
        small_fp = program.materialize(smaller).instance
        combined_fp = program.materialize(combined).instance
        assert set(small_fp) <= set(combined_fp)
