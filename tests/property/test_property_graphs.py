"""Property-based tests for the position graph and P-node graph."""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.swr import is_swr
from repro.core.wr import is_wr
from repro.graphs.position_graph import build_position_graph
from repro.graphs.pnode_graph import build_pnode_graph
from repro.lang.signature import Signature
from repro.lang.tgd import TGD
from repro.workloads.generators import random_simple

seeds = st.integers(min_value=0, max_value=10_000)


def rules_from_seed(seed: int) -> tuple[TGD, ...]:
    return random_simple(
        random.Random(seed), n_rules=4, n_relations=4, max_arity=3
    )


def _rename_rules(rules, suffix: str):
    """Disjoint copy: every relation gets *suffix* appended."""
    from repro.lang.atoms import Atom

    renamed = []
    for rule in rules:
        body = [Atom(a.relation + suffix, a.terms) for a in rule.body]
        head = [Atom(a.relation + suffix, a.terms) for a in rule.head]
        renamed.append(TGD(body, head, label=rule.label))
    return tuple(renamed)


class TestPositionGraphProperties:
    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, seed):
        rules = rules_from_seed(seed)
        first = build_position_graph(rules)
        second = build_position_graph(rules)
        assert {str(e) for e in first.edges} == {
            str(e) for e in second.edges
        }

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_positions_respect_signature(self, seed):
        rules = rules_from_seed(seed)
        signature = Signature.from_rules(rules)
        for position in build_position_graph(rules).positions:
            assert position.relation in signature
            if position.index is not None:
                assert 1 <= position.index <= signature[position.relation]

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_disjoint_union_preserves_swr(self, seed):
        rules = rules_from_seed(seed)
        copy = _rename_rules(rules, "_dup")
        combined = rules + copy
        assert is_swr(combined).is_swr == is_swr(rules).is_swr

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_subgraph_of_union(self, seed):
        rules = rules_from_seed(seed)
        copy = _rename_rules(rules, "_dup")
        single_edges = {str(e) for e in build_position_graph(rules).edges}
        union_edges = {
            str(e) for e in build_position_graph(rules + copy).edges
        }
        assert single_edges <= union_edges


class TestPNodeGraphProperties:
    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_deterministic(self, seed):
        rules = rules_from_seed(seed)
        first = build_pnode_graph(rules)
        second = build_pnode_graph(rules)
        assert {str(e) for e in first.edges} == {
            str(e) for e in second.edges
        }

    @given(seeds)
    @settings(max_examples=12, deadline=None)
    def test_disjoint_union_preserves_wr(self, seed):
        rules = rules_from_seed(seed)
        copy = _rename_rules(rules, "_dup")
        assert is_wr(rules + copy).is_wr == is_wr(rules).is_wr

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_sigma_always_in_context(self, seed):
        rules = rules_from_seed(seed)
        for node in build_pnode_graph(rules).pnodes:
            assert node.atom in node.context

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_canonical_variable_names(self, seed):
        rules = rules_from_seed(seed)
        for node in build_pnode_graph(rules).pnodes:
            for atom in node.context:
                for var in atom.variables():
                    assert var.name == "z" or var.name.startswith("x")
