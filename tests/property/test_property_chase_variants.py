"""Property-based agreement tests across the three chase variants.

On weakly-acyclic inputs all three chases terminate; the certain
answers read off each fixpoint (null-free filter) must coincide, and
the instance-size ordering restricted ⊆ skolem ⊆ oblivious must hold.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.chase.chase import oblivious_chase, restricted_chase
from repro.chase.skolem import skolem_chase
from repro.chase.termination import is_weakly_acyclic
from repro.data.database import Database
from repro.data.evaluation import evaluate_cq
from repro.lang.atoms import Atom
from repro.lang.queries import ConjunctiveQuery
from repro.lang.terms import Constant, Variable
from repro.lang.tgd import TGD

RELATIONS = {"a": 1, "r": 2}
VARS = [Variable(f"V{i}") for i in range(3)]
VALUES = [Constant(f"d{i}") for i in range(3)]


@st.composite
def tgds(draw):
    body_relation = draw(st.sampled_from(sorted(RELATIONS)))
    body = [
        Atom(
            body_relation,
            [draw(st.sampled_from(VARS)) for _ in range(RELATIONS[body_relation])],
        )
    ]
    head_relation = draw(st.sampled_from(sorted(RELATIONS)))
    body_vars = sorted(
        {v for a in body for v in a.variables()}, key=lambda v: v.name
    )
    head_terms = []
    for position in range(RELATIONS[head_relation]):
        if draw(st.booleans()):
            head_terms.append(draw(st.sampled_from(body_vars)))
        else:
            head_terms.append(Variable(f"E{position}"))
    if not set(head_terms) & set(body_vars):
        head_terms[0] = body_vars[0]
    return TGD(body, [Atom(head_relation, head_terms)])


rule_sets = st.lists(tgds(), min_size=1, max_size=3)


@st.composite
def databases(draw):
    facts = []
    for relation, arity in RELATIONS.items():
        for _ in range(draw(st.integers(0, 3))):
            facts.append(
                Atom(
                    relation,
                    [draw(st.sampled_from(VALUES)) for _ in range(arity)],
                )
            )
    return Database(facts)


QUERIES = (
    ConjunctiveQuery([Variable("X")], [Atom("a", [Variable("X")])]),
    ConjunctiveQuery(
        [Variable("X")], [Atom("r", [Variable("X"), Variable("Y")])]
    ),
    ConjunctiveQuery([], [Atom("r", [Variable("X"), Variable("X")])]),
)


class TestChaseVariantAgreement:
    @given(rule_sets, databases())
    @settings(max_examples=50, deadline=None)
    def test_certain_answers_agree(self, rules, database):
        if not is_weakly_acyclic(rules):
            return
        restricted = restricted_chase(
            list(rules), database.copy(), max_steps=5_000
        )
        skolem = skolem_chase(list(rules), database.copy(), max_steps=5_000)
        if not (restricted.fixpoint and skolem.fixpoint):
            return
        for query in QUERIES:
            assert evaluate_cq(
                query, restricted.instance, certain=True
            ) == evaluate_cq(query, skolem.instance, certain=True)

    @given(rule_sets, databases())
    @settings(max_examples=30, deadline=None)
    def test_size_ordering(self, rules, database):
        if not is_weakly_acyclic(rules):
            return
        restricted = restricted_chase(
            list(rules), database.copy(), max_steps=5_000
        )
        skolem = skolem_chase(list(rules), database.copy(), max_steps=5_000)
        oblivious = oblivious_chase(
            list(rules), database.copy(), max_steps=5_000
        )
        if not (
            restricted.fixpoint and skolem.fixpoint and oblivious.fixpoint
        ):
            return
        assert len(restricted.instance) <= len(skolem.instance)
        assert len(skolem.instance) <= len(oblivious.instance)

    @given(rule_sets, databases())
    @settings(max_examples=30, deadline=None)
    def test_skolem_order_insensitive(self, rules, database):
        if not is_weakly_acyclic(rules):
            return
        forward = skolem_chase(list(rules), database.copy(), max_steps=5_000)
        backward = skolem_chase(
            list(reversed(rules)), database.copy(), max_steps=5_000
        )
        if not (forward.fixpoint and backward.fixpoint):
            return
        # Null labels embed the rule index, so compare null-free
        # projections: certain answers must be identical.
        for query in QUERIES:
            assert evaluate_cq(
                query, forward.instance, certain=True
            ) == evaluate_cq(query, backward.instance, certain=True)
