"""Property-based tests for CQ canonical forms and subsumption."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lang.atoms import Atom
from repro.lang.queries import ConjunctiveQuery
from repro.lang.substitution import Substitution
from repro.lang.terms import Constant, Variable
from repro.rewriting.minimize import is_subsumed, minimize_cq

variables = st.integers(min_value=0, max_value=4).map(
    lambda i: Variable(f"V{i}")
)
terms = st.one_of(variables, st.sampled_from([Constant("a"), Constant("b")]))
relations = st.sampled_from(["r", "s", "t"])


@st.composite
def cqs(draw, max_atoms=4):
    n_atoms = draw(st.integers(min_value=1, max_value=max_atoms))
    body = []
    for _ in range(n_atoms):
        relation = draw(relations)
        arity = {"r": 2, "s": 1, "t": 3}[relation]
        body.append(Atom(relation, [draw(terms) for _ in range(arity)]))
    body_vars = sorted(
        {v for a in body for v in a.variables()}, key=lambda v: v.name
    )
    n_answers = draw(st.integers(min_value=0, max_value=min(2, len(body_vars))))
    answers = body_vars[:n_answers]
    return ConjunctiveQuery(answers, body)


@st.composite
def renamings(draw):
    mapping = {
        Variable(f"V{i}"): Variable(f"W{draw(st.integers(0, 9))}_{i}")
        for i in range(5)
    }
    return Substitution(mapping)


class TestCanonicalForm:
    @given(cqs(), renamings())
    @settings(max_examples=150)
    def test_invariant_under_injective_renaming(self, query, renaming):
        renamed = query.apply(renaming)
        assert renamed.canonical() == query.canonical()

    @given(cqs())
    def test_invariant_under_body_reversal(self, query):
        reversed_query = ConjunctiveQuery(
            query.answer_terms, tuple(reversed(query.body))
        )
        assert reversed_query.canonical() == query.canonical()

    @given(cqs())
    def test_equal_keys_imply_mutual_subsumption(self, query):
        # Soundness of the canonical key: same key -> isomorphic, and
        # isomorphic queries subsume each other.
        other = query.rename_apart(query.body_variables())
        assert other.canonical() == query.canonical()
        assert is_subsumed(query, other) and is_subsumed(other, query)


class TestSubsumptionProperties:
    @given(cqs())
    def test_reflexive(self, query):
        assert is_subsumed(query, query)

    @given(cqs(), cqs(), cqs())
    @settings(max_examples=75)
    def test_transitive(self, a, b, c):
        if is_subsumed(a, b) and is_subsumed(b, c):
            assert is_subsumed(a, c)

    @given(cqs())
    def test_adding_an_atom_specialises(self, query):
        extended = ConjunctiveQuery(
            query.answer_terms,
            query.body + (Atom("s", [Constant("a")]),),
        )
        assert is_subsumed(extended, query)


class TestMinimization:
    @given(cqs())
    @settings(max_examples=100)
    def test_minimize_preserves_equivalence(self, query):
        minimized = minimize_cq(query)
        assert is_subsumed(minimized, query)
        assert is_subsumed(query, minimized)

    @given(cqs())
    def test_minimize_never_grows(self, query):
        assert len(minimize_cq(query).body) <= len(set(query.body))

    @given(cqs())
    @settings(max_examples=75)
    def test_minimize_idempotent(self, query):
        once = minimize_cq(query)
        assert minimize_cq(once).canonical() == once.canonical()
