"""Property-based tests for the parser: robustness and round-trips."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lang.errors import ReproError
from repro.lang.parser import (
    parse_atom,
    parse_program,
    parse_query,
    parse_tgd,
)
from repro.lang.printer import format_program

identifiers = st.from_regex(r"[a-z][a-zA-Z0-9_]{0,6}", fullmatch=True)
upper_identifiers = st.from_regex(r"[A-Z][a-zA-Z0-9_]{0,6}", fullmatch=True)


@st.composite
def atom_texts(draw):
    relation = draw(identifiers)
    n_args = draw(st.integers(0, 3))
    args = []
    for _ in range(n_args):
        kind = draw(st.integers(0, 2))
        if kind == 0:
            args.append(draw(upper_identifiers))
        elif kind == 1:
            args.append(draw(identifiers))
        else:
            args.append(str(draw(st.integers(-99, 99))))
    return f"{relation}({', '.join(args)})"


class TestFuzzRobustness:
    @given(st.text(max_size=60))
    @settings(max_examples=300)
    def test_arbitrary_text_never_crashes_unexpectedly(self, text):
        """Any input either parses or raises a library error."""
        for parser in (parse_atom, parse_tgd, parse_query, parse_program):
            try:
                parser(text)
            except ReproError:
                pass  # the expected failure mode

    @given(st.text(alphabet="().,:->%XYZabc123\"' \n", max_size=80))
    @settings(max_examples=300)
    def test_syntaxish_text_never_crashes_unexpectedly(self, text):
        for parser in (parse_tgd, parse_program):
            try:
                parser(text)
            except ReproError:
                pass


class TestGeneratedRoundTrips:
    @given(atom_texts())
    @settings(max_examples=150)
    def test_atom_roundtrip(self, text):
        atom = parse_atom(text)
        assert parse_atom(str(atom)) == atom

    @given(st.lists(atom_texts(), min_size=1, max_size=3), atom_texts())
    @settings(max_examples=150)
    def test_tgd_roundtrip(self, body_texts, head_text):
        text = f"{', '.join(body_texts)} -> {head_text}"
        rule = parse_tgd(text)
        assert parse_tgd(str(rule)) == rule

    @given(st.lists(atom_texts(), min_size=1, max_size=4))
    @settings(max_examples=100)
    def test_program_roundtrip(self, atoms):
        text = ". ".join(f"{a} -> {a}" for a in atoms)
        program = parse_program(text)
        assert parse_program(format_program(program)) == program
