"""Property-based tests for the rewriting engine and the chase.

The key end-to-end invariants:

* **soundness** -- every answer produced by a (possibly partial)
  rewriting is a certain answer;
* **completeness** -- when the rewriting finishes, it produces exactly
  the certain answers (checked against the chase on weakly-acyclic
  random inputs);
* **chase universality** -- every certain answer is an answer over the
  chase instance.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.chase.certain import certain_answers
from repro.lang.errors import ChaseBudgetExceeded
from repro.chase.chase import restricted_chase
from repro.chase.termination import is_weakly_acyclic
from repro.data.database import Database
from repro.data.evaluation import evaluate_ucq
from repro.lang.atoms import Atom
from repro.lang.queries import ConjunctiveQuery
from repro.lang.terms import Constant, Variable
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.rewriter import rewrite

# --------------------------------------------------------------------- #
# Strategies: small rule sets over a fixed signature                     #
#   a/1, r/2, s/2 -- enough to express hierarchies, role chains and      #
#   joins while keeping the chase fast.                                  #
# --------------------------------------------------------------------- #

RELATIONS = {"a": 1, "b": 1, "r": 2, "s": 2}
VARS = [Variable(f"V{i}") for i in range(4)]


@st.composite
def rule_atoms(draw):
    relation = draw(st.sampled_from(sorted(RELATIONS)))
    terms = [
        draw(st.sampled_from(VARS)) for _ in range(RELATIONS[relation])
    ]
    return Atom(relation, terms)


@st.composite
def tgds(draw):
    from repro.lang.tgd import TGD

    body = [draw(rule_atoms()) for _ in range(draw(st.integers(1, 2)))]
    head = [draw(rule_atoms())]
    body_vars = {v for a in body for v in a.variables()}
    # Ensure at least one frontier variable so the rule is connected.
    if not (body_vars & set(head[0].variables())):
        anchor = sorted(body_vars, key=lambda v: v.name)[0]
        head = [Atom(head[0].relation, [anchor] + list(head[0].terms[1:]))]
    return TGD(body, head)


rule_sets = st.lists(tgds(), min_size=1, max_size=3)

fact_values = [Constant(f"d{i}") for i in range(3)]


@st.composite
def databases(draw):
    facts = []
    for relation, arity in RELATIONS.items():
        for _ in range(draw(st.integers(0, 3))):
            facts.append(
                Atom(
                    relation,
                    [draw(st.sampled_from(fact_values)) for _ in range(arity)],
                )
            )
    return Database(facts)


QUERY = ConjunctiveQuery([Variable("X")], [Atom("r", [Variable("X"), Variable("Y")])])
BOOLEAN = ConjunctiveQuery([], [Atom("b", [Variable("X")])])


class TestSoundnessAndCompleteness:
    @given(rule_sets, databases())
    @settings(max_examples=60, deadline=None)
    def test_partial_rewriting_is_sound(self, rules, database):
        if not is_weakly_acyclic(rules):
            return
        result = rewrite(
            QUERY, rules, RewritingBudget(max_depth=3, max_cqs=2_000)
        )
        partial = evaluate_ucq(result.ucq, database)
        try:
            truth = certain_answers(QUERY, rules, database, max_steps=5_000)
        except ChaseBudgetExceeded:
            return  # combinatorially large chase; skip this example
        assert partial <= truth

    @given(rule_sets, databases())
    @settings(max_examples=60, deadline=None)
    def test_complete_rewriting_is_exact(self, rules, database):
        if not is_weakly_acyclic(rules):
            return
        result = rewrite(
            QUERY,
            rules,
            RewritingBudget(max_depth=15, max_cqs=5_000, max_seconds=10),
        )
        if not result.complete:
            return
        try:
            truth = certain_answers(QUERY, rules, database, max_steps=5_000)
        except ChaseBudgetExceeded:
            return
        assert evaluate_ucq(result.ucq, database) == truth

    @given(rule_sets, databases())
    @settings(max_examples=40, deadline=None)
    def test_boolean_queries_exact(self, rules, database):
        if not is_weakly_acyclic(rules):
            return
        result = rewrite(
            BOOLEAN,
            rules,
            RewritingBudget(max_depth=15, max_cqs=5_000, max_seconds=10),
        )
        if not result.complete:
            return
        try:
            truth = certain_answers(BOOLEAN, rules, database, max_steps=5_000)
        except ChaseBudgetExceeded:
            return
        assert evaluate_ucq(result.ucq, database) == truth


class TestChaseInvariants:
    @given(rule_sets, databases())
    @settings(max_examples=60, deadline=None)
    def test_chase_contains_input(self, rules, database):
        if not is_weakly_acyclic(rules):
            return
        result = restricted_chase(list(rules), database, max_steps=5_000)
        assert set(database) <= set(result.instance)

    @given(rule_sets, databases())
    @settings(max_examples=40, deadline=None)
    def test_chase_is_a_model(self, rules, database):
        """Every rule is satisfied in the chase fixpoint."""
        from repro.data.evaluation import all_homomorphisms, find_homomorphism

        if not is_weakly_acyclic(rules):
            return
        result = restricted_chase(list(rules), database, max_steps=5_000)
        if not result.fixpoint:
            return
        for rule in rules:
            frontier = set(rule.distinguished_variables())
            for hom in all_homomorphisms(rule.body, result.instance):
                head_pattern = []
                for atom in rule.head:
                    head_pattern.append(
                        Atom(
                            atom.relation,
                            [
                                hom[t]
                                if isinstance(t, Variable) and t in frontier
                                else t
                                for t in atom.terms
                            ],
                        )
                    )
                assert (
                    find_homomorphism(head_pattern, result.instance)
                    is not None
                )

    @given(rule_sets, databases())
    @settings(max_examples=30, deadline=None)
    def test_restricted_chase_smaller_than_oblivious(self, rules, database):
        from repro.chase.chase import oblivious_chase

        if not is_weakly_acyclic(rules):
            return
        restricted = restricted_chase(list(rules), database, max_steps=5_000)
        oblivious = oblivious_chase(list(rules), database, max_steps=5_000)
        if restricted.fixpoint and oblivious.fixpoint:
            assert len(restricted.instance) <= len(oblivious.instance)
