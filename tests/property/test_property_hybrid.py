"""Differential property suite for incremental hybrid maintenance.

Over random insert/delete tapes on stratified (hence SWR and weakly
acyclic) programs, three independently implemented answering paths
must agree after every mutation:

* the incrementally maintained core (semi-naive insert, DRed delete);
* a full re-chase of the mutated base (the oracle);
* pure FO rewriting over the mutated base.

The generated programs reuse the stratified strategies of
:mod:`tests.property.test_differential_answers`, so both the chase and
the rewriting are total and exact -- any disagreement is a real bug in
the maintenance algebra.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.api import EngineOptions, Session
from repro.chase.certain import certain_answers
from repro.data.database import Database
from repro.data.evaluation import evaluate_ucq
from repro.hybrid import MaterializedCore
from repro.lang.atoms import Atom
from repro.rewriting.engine import FORewritingEngine
from tests.property.test_differential_answers import (
    ARITY,
    CONSTANTS,
    ORDER,
    databases,
    programs,
    queries,
)

# --------------------------------------------------------------------- #
# Strategies                                                             #
# --------------------------------------------------------------------- #


@st.composite
def base_facts(draw, min_size: int = 1, max_size: int = 3):
    facts = []
    for _ in range(draw(st.integers(min_size, max_size))):
        relation = draw(st.sampled_from(ORDER))
        terms = [
            draw(st.sampled_from(CONSTANTS))
            for _ in range(ARITY[relation])
        ]
        facts.append(Atom(relation, terms))
    return facts


@st.composite
def mutation_tapes(draw, max_ops: int = 4):
    """A sequence of ('insert'|'delete', facts) mutation steps."""
    tape = []
    for _ in range(draw(st.integers(1, max_ops))):
        op = draw(st.sampled_from(("insert", "delete")))
        tape.append((op, draw(base_facts())))
    return tape


def apply_to_reference(db: Database, op: str, facts) -> None:
    for fact in facts:
        if op == "insert":
            db.add(fact)
        else:
            db.discard(fact)


# --------------------------------------------------------------------- #
# Properties                                                             #
# --------------------------------------------------------------------- #


@settings(max_examples=50, deadline=None)
@given(programs(), databases(), mutation_tapes(), queries())
def test_maintained_core_tracks_rechase_and_rewriting(
    rules, database, tape, query
):
    """After every mutation: core == full re-chase == pure rewriting."""
    core = MaterializedCore(rules, database)
    reference = database.copy()
    engine = FORewritingEngine(rules)
    for op, facts in tape:
        if op == "insert":
            core.apply_insert(facts)
        else:
            core.apply_delete(facts)
        apply_to_reference(reference, op, facts)
        assert core.check_consistency() == []
        via_core = evaluate_ucq(query, core.instance, certain=True)
        oracle = certain_answers(query, rules, reference, max_steps=20_000)
        via_rewriting = engine.answer(query, reference)
        assert via_core == oracle, f"core diverged after {op}"
        assert via_rewriting == oracle


@settings(max_examples=30, deadline=None)
@given(programs(), databases(), mutation_tapes(max_ops=3), queries())
def test_session_materialize_tracks_mutations(rules, database, tape, query):
    """The session-level materialize path agrees with a fresh oracle."""
    options = EngineOptions(hybrid="materialize")
    with Session(rules, database.copy(), options=options) as session:
        session.answer(query)  # force the core build
        reference = database.copy()
        for op, facts in tape:
            getattr(session, op)(facts)
            apply_to_reference(reference, op, facts)
        oracle = certain_answers(query, rules, reference, max_steps=20_000)
        assert session.answer(query) == oracle
        assert session.answer(query, backend="sql") == oracle


@settings(max_examples=30, deadline=None)
@given(programs(), databases(), mutation_tapes())
def test_maintenance_is_history_independent(rules, database, tape):
    """The maintained instance matches a core built fresh at the end."""
    core = MaterializedCore(rules, database)
    reference = database.copy()
    for op, facts in tape:
        if op == "insert":
            core.apply_insert(facts)
        else:
            core.apply_delete(facts)
        apply_to_reference(reference, op, facts)
    assert set(core.base.facts()) == set(reference.facts())
    from repro.hybrid.maintain import _certain_shape

    fresh = MaterializedCore(rules, reference)
    assert _certain_shape(core.instance) == _certain_shape(fresh.instance)
