"""Property-based tests (hypothesis) for the language layer."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lang.atoms import Atom
from repro.lang.substitution import Substitution, rename_apart
from repro.lang.terms import Constant, Variable
from repro.lang.unify import mgu_atoms

variables = st.integers(min_value=0, max_value=5).map(
    lambda i: Variable(f"V{i}")
)
constants = st.sampled_from([Constant("a"), Constant("b"), Constant(1)])
terms = st.one_of(variables, constants)


def atoms(relation="r", min_arity=1, max_arity=4):
    return st.lists(terms, min_size=min_arity, max_size=max_arity).map(
        lambda ts: Atom(relation, ts)
    )


substitutions = st.dictionaries(variables, terms, max_size=5).map(Substitution)


class TestUnification:
    @given(atoms(), atoms())
    def test_mgu_actually_unifies(self, first, second):
        unifier = mgu_atoms(first, second)
        if unifier is not None:
            assert unifier.apply_atom(first) == unifier.apply_atom(second)

    @given(atoms(), atoms())
    def test_mgu_symmetric_in_success(self, first, second):
        forward = mgu_atoms(first, second)
        backward = mgu_atoms(second, first)
        assert (forward is None) == (backward is None)

    @given(atoms())
    def test_self_unification_is_identity_modulo_renaming(self, atom):
        unifier = mgu_atoms(atom, atom)
        assert unifier is not None
        assert unifier.apply_atom(atom) == atom

    @given(atoms(), atoms())
    @settings(max_examples=200)
    def test_mgu_is_idempotent(self, first, second):
        unifier = mgu_atoms(first, second)
        if unifier is not None:
            once = unifier.apply_atom(first)
            assert unifier.apply_atom(once) == once


class TestSubstitutionAlgebra:
    @given(substitutions, substitutions, terms)
    def test_compose_equation(self, first, second, term):
        composed = first.compose(second)
        assert composed.apply_term(term) == second.apply_term(
            first.apply_term(term)
        )

    @given(substitutions, terms)
    def test_identity_neutral(self, sub, term):
        identity = Substitution.identity()
        assert identity.compose(sub).apply_term(term) == sub.apply_term(term)
        assert sub.compose(identity).apply_term(term) == sub.apply_term(term)

    @given(substitutions, substitutions, substitutions, terms)
    @settings(max_examples=100)
    def test_compose_associative_on_application(self, f, g, h, term):
        left = f.compose(g).compose(h)
        right = f.compose(g.compose(h))
        assert left.apply_term(term) == right.apply_term(term)


class TestRenameApart:
    @given(
        st.lists(variables, max_size=6, unique=True),
        st.lists(variables, max_size=6, unique=True),
    )
    def test_images_avoid_taken(self, to_rename, taken):
        renaming = rename_apart(to_rename, taken)
        taken_names = {v.name for v in taken}
        for image in renaming.values():
            assert image.name not in taken_names

    @given(
        st.lists(variables, max_size=6, unique=True),
        st.lists(variables, max_size=6, unique=True),
    )
    def test_renaming_is_injective(self, to_rename, taken):
        renaming = rename_apart(to_rename, taken)
        images = list(renaming.values())
        assert len(images) == len(set(images))
