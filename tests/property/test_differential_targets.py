"""Differential property suite for the nonrecursive-Datalog target.

Reuses the stratified-workload strategies of
:mod:`tests.property.test_differential_answers` (the PR-2 harness) and
checks that the second rewriting target agrees with every established
answering path:

* ``rewrite_datalog(...).answer``  -- Datalog program, in-memory eval;
* SQL ``WITH``-CTE compilation     -- the same program on SQLite;
* ``FORewritingEngine.answer``     -- exploded-UCQ target;
* chase certain answers            -- the semantics oracle.

The generated programs are stratified, hence SWR and weakly acyclic:
every path is exact and total, so any disagreement is a real bug.
Budget-truncated programs are additionally checked to stay *sound*
(a subset of the oracle) on both evaluation backends.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.chase.certain import certain_answers
from repro.data.sql import datalog_to_sql
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.datalog_target import rewrite_datalog
from repro.rewriting.engine import FORewritingEngine

from tests.property.test_differential_answers import (
    databases,
    programs,
    queries,
    sqlite_backend,
    ucq_queries,
)


def _sql_answers(datalog, rules, database, query):
    """Evaluate the program's WITH-CTE compilation on SQLite."""
    with sqlite_backend(rules, database, query) as backend:
        backend.ensure_atoms(datalog.base_atoms())
        return backend.execute_sql(datalog_to_sql(datalog))


@settings(max_examples=100, deadline=None)
@given(programs(), databases(), queries())
def test_datalog_target_agrees_with_all_paths(rules, database, query):
    """Datalog == UCQ == chase == SQL-CTE on stratified inputs."""
    datalog = rewrite_datalog(query, rules)
    assert datalog.complete
    oracle = certain_answers(query, rules, database, max_steps=20_000)
    via_memory = datalog.answer(database)
    via_sql = _sql_answers(datalog, rules, database, query)
    via_ucq = FORewritingEngine(rules).answer(query, database)
    assert via_memory == oracle
    assert via_sql == oracle
    assert via_ucq == oracle


@settings(max_examples=50, deadline=None)
@given(programs(), databases(), ucq_queries())
def test_datalog_target_ucq_inputs(rules, database, ucq):
    """UCQ inputs: shared aux predicates don't leak across disjuncts."""
    datalog = rewrite_datalog(ucq, rules)
    oracle = certain_answers(ucq, rules, database, max_steps=20_000)
    assert datalog.answer(database) == oracle
    assert _sql_answers(datalog, rules, database, ucq) == oracle


@settings(max_examples=40, deadline=None)
@given(programs(), databases(), queries())
def test_budgeted_datalog_is_sound_subset(rules, database, query):
    """Budget-truncated Datalog programs only ever lose answers."""
    tight = RewritingBudget(max_depth=1, max_cqs=100_000)
    datalog = rewrite_datalog(query, rules, tight)
    oracle = certain_answers(query, rules, database, max_steps=20_000)
    via_memory = datalog.answer(database)
    via_sql = _sql_answers(datalog, rules, database, query)
    assert via_memory <= oracle
    # Both evaluation backends degrade identically.
    assert via_sql == via_memory
    if datalog.complete:
        assert via_memory == oracle


@settings(max_examples=40, deadline=None)
@given(programs(), databases(), queries())
def test_auto_target_never_diverges(rules, database, query):
    """Whatever ``auto`` picks, the session-level answers match."""
    engine = FORewritingEngine(rules, target="auto")
    selected = engine.resolve_target(query)
    assert selected in ("ucq", "datalog")
    oracle = certain_answers(query, rules, database, max_steps=20_000)
    if selected == "datalog":
        assert rewrite_datalog(query, rules).answer(database) == oracle
    assert FORewritingEngine(rules).answer(query, database) == oracle
