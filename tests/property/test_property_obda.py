"""Property-based end-to-end tests of the OBDA pipeline.

Random GAV-mapped sources over a fixed SWR ontology: the in-memory
rewriting path, the SQLite path and the chase oracle must agree on
every generated instance.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.data.csvio import facts_from_rows
from repro.data.database import Database
from repro.lang.parser import parse_atom, parse_program, parse_query
from repro.obda.mappings import MappingAssertion
from repro.obda.system import OBDASystem

ONTOLOGY = parse_program(
    """
    o1: staff(X) -> person(X).
    o2: person(X) -> memberOf(X, G).
    o3: memberOf(X, G) -> group(G).
    o4: leads(X, G) -> memberOf(X, G).
    o5: leads(X, G) -> staff(X).
    """
)

MAPPINGS = (
    MappingAssertion((parse_atom("hr(P, R)"),), parse_atom("staff(P)")),
    MappingAssertion(
        (parse_atom('hr(P, "lead")'), parse_atom("team(P, G)")),
        parse_atom("leads(P, G)"),
    ),
    MappingAssertion((parse_atom("team(P, G)"),), parse_atom("memberOf(P, G)")),
)

QUERIES = (
    parse_query("q(X) :- person(X)"),
    parse_query("q(G) :- group(G)"),
    parse_query("q(X, G) :- memberOf(X, G)"),
    parse_query("q() :- leads(X, G), group(G)"),
)

people = st.sampled_from([f"p{i}" for i in range(5)])
groups = st.sampled_from([f"g{i}" for i in range(3)])
roles = st.sampled_from(["lead", "member", "guest"])


@st.composite
def sources(draw):
    source = Database()
    hr_rows = draw(
        st.lists(st.tuples(people, roles), max_size=6, unique=True)
    )
    team_rows = draw(
        st.lists(st.tuples(people, groups), max_size=6, unique=True)
    )
    source.add_all(facts_from_rows("hr", hr_rows))
    source.add_all(facts_from_rows("team", team_rows))
    return source


class TestOBDAPipelines:
    @given(sources())
    @settings(max_examples=40, deadline=None)
    def test_rewriting_equals_chase(self, source):
        with OBDASystem(ONTOLOGY, source, mappings=MAPPINGS) as system:
            for query in QUERIES:
                assert system.certain_answers(
                    query
                ) == system.certain_answers_chase(query)

    @given(sources())
    @settings(max_examples=25, deadline=None)
    def test_sql_equals_memory(self, source):
        with OBDASystem(ONTOLOGY, source, mappings=MAPPINGS) as system:
            for query in QUERIES:
                assert system.certain_answers_sql(
                    query
                ) == system.certain_answers(query)

    @given(sources(), sources())
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_the_source(self, smaller, larger):
        combined = Database(list(smaller) + list(larger))
        with OBDASystem(ONTOLOGY, smaller, mappings=MAPPINGS) as small_sys:
            with OBDASystem(
                ONTOLOGY, combined, mappings=MAPPINGS
            ) as big_sys:
                for query in QUERIES:
                    assert small_sys.certain_answers(
                        query
                    ) <= big_sys.certain_answers(query)
